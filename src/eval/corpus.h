#pragma once

#include "src/eval/subject.h"

namespace preinfer::eval {

/// The evaluation corpus: seven namespaces mirroring the paper's Table V
/// rows, written in MiniLang with hand-derived ground-truth preconditions
/// per assertion-containing location. The paper's C# subjects are not
/// available (nor compilable here), so each namespace reconstructs the same
/// exception-throwing idioms its original exercised: null arguments, bad
/// indices, zero divisors, and quantified collection-content conditions.
[[nodiscard]] Subject algorithmia_sorting();
[[nodiscard]] Subject algorithmia_general_data_structures();
[[nodiscard]] Subject dsa_algorithm();
[[nodiscard]] Subject codecontracts_examples_puri();
[[nodiscard]] Subject codecontracts_preinference();
[[nodiscard]] Subject codecontracts_array_purity();
[[nodiscard]] Subject svcomp_csharp();

/// Extended method sets (corpus_extended.cpp): additional subjects per
/// namespace, including interprocedural cases (a subject source may hold
/// several methods; the first is the method under test).
void add_extended_sorting(Subject& s);
void add_extended_general_data_structures(Subject& s);
void add_extended_dsa(Subject& s);
void add_extended_examples_puri(Subject& s);
void add_extended_preinference(Subject& s);
void add_extended_array_purity(Subject& s);
void add_extended_svcomp(Subject& s);
/// Batch 3 (corpus_extended2.cpp): break/continue subjects and further hard
/// shapes; dispatches on the subject's name.
void add_extended2(Subject& s);

/// All seven, in Table V order.
[[nodiscard]] const std::vector<Subject>& corpus();

}  // namespace preinfer::eval
