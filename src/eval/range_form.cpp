#include "src/eval/range_form.h"

#include <algorithm>
#include <cstdint>
#include <optional>
#include <utility>
#include <vector>

#include "src/core/complexity.h"
#include "src/sym/print.h"

namespace preinfer::eval {

namespace {

using sym::Expr;
using sym::Kind;
using sym::Sort;

/// Terms that act as interval variables: exactly the ground terms the
/// solver's variable table tracks (src/solver/atom_index.cpp).
bool is_var_term(const Expr* e) {
    switch (e->kind) {
        case Kind::Param: return e->sort == Sort::Int;
        case Kind::Len: return true;
        case Kind::Select: return e->sort == Sort::Int;
        default: return false;
    }
}

/// Tiny linear form over variable terms, `sum coeff*term + constant`.
/// Terms are interned, so pointer identity is structural identity.
struct Lin {
    std::vector<std::pair<const Expr*, std::int64_t>> coeffs;
    std::int64_t constant = 0;

    /// Folds by term; cancelled terms are swept by the caller afterwards.
    void add_term(const Expr* term, std::int64_t coeff) {
        for (auto& [t, c] : coeffs) {
            if (t == term) {
                c += coeff;
                return;
            }
        }
        coeffs.emplace_back(term, coeff);
    }
};

/// Linearizes `e * scale` into `out`; false outside the unit fragment.
/// Overflow-checked like the solver's loader — a fold that wraps just
/// means "not range-shaped" here.
bool linearize(const Expr* e, std::int64_t scale, Lin& out) {
    switch (e->kind) {
        case Kind::IntConst: {
            std::int64_t scaled = 0;
            if (__builtin_mul_overflow(e->a, scale, &scaled)) return false;
            if (__builtin_add_overflow(out.constant, scaled, &out.constant))
                return false;
            return true;
        }
        case Kind::Neg: {
            std::int64_t neg = 0;
            if (__builtin_sub_overflow(std::int64_t{0}, scale, &neg)) return false;
            return linearize(e->child0, neg, out);
        }
        case Kind::Add:
            return linearize(e->child0, scale, out) &&
                   linearize(e->child1, scale, out);
        case Kind::Sub: {
            std::int64_t neg = 0;
            if (__builtin_sub_overflow(std::int64_t{0}, scale, &neg)) return false;
            return linearize(e->child0, scale, out) &&
                   linearize(e->child1, neg, out);
        }
        default:
            if (is_var_term(e)) {
                out.add_term(e, scale);
                return true;
            }
            return false;
    }
}

/// One rendered bound on a variable: `text` is the other side, `strict`
/// distinguishes `<` from `<=`.
struct SymBound {
    std::string text;
    bool strict = false;
};

/// Accumulated interval facts for one variable term.
struct VarRange {
    const Expr* term = nullptr;
    std::optional<std::int64_t> lo;  ///< merged constant lower bound
    std::optional<std::int64_t> hi;  ///< merged constant upper bound
    std::vector<SymBound> sym_lo;    ///< `text <[=] var`
    std::vector<SymBound> sym_hi;    ///< `var <[=] text`
};

struct Collector {
    std::span<const std::string> param_names;
    std::vector<VarRange> vars;          ///< first-mention order
    std::vector<std::string> literals;   ///< boolean side conditions, in order
    int literal_connectives = 0;         ///< Nots inside pass-through literals
    int bound_count = 0;                 ///< comparisons folded into intervals

    VarRange& range_for(const Expr* term) {
        for (VarRange& v : vars) {
            if (v.term == term) return v;
        }
        vars.push_back(VarRange{term, {}, {}, {}, {}});
        return vars.back();
    }

    static bool has_bound(const std::vector<SymBound>& list, const SymBound& b) {
        for (const SymBound& seen : list) {
            if (seen.text == b.text && seen.strict == b.strict) return true;
        }
        return false;
    }

    /// Records `lin <= 0` (or `== 0` when eq). False when the shape is not
    /// a unit-coefficient bound or the constant bounds become contradictory.
    bool record(Lin lin, bool eq) {
        if (lin.coeffs.size() == 1) {
            const auto [term, coeff] = lin.coeffs.front();
            if (coeff != 1 && coeff != -1) return false;
            VarRange& v = range_for(term);
            // coeff*t + k <= 0  =>  t <= -k (coeff 1) | t >= k (coeff -1)
            if (eq) {
                const std::int64_t value = coeff == 1 ? -lin.constant : lin.constant;
                if ((v.lo && *v.lo > value) || (v.hi && *v.hi < value)) return false;
                v.lo = v.hi = value;
            } else if (coeff == 1) {
                const std::int64_t hi = -lin.constant;
                if (!v.hi || *v.hi > hi) v.hi = hi;
            } else {
                const std::int64_t lo = lin.constant;
                if (!v.lo || *v.lo < lo) v.lo = lo;
            }
            if (v.lo && v.hi && *v.lo > *v.hi) return false;
            ++bound_count;
            return true;
        }
        if (lin.coeffs.size() == 2) {
            // t1 - t2 + k <= 0  =>  t1 <= t2 - k: an upper bound on the
            // +1-coefficient term. Equalities between two terms are not
            // intervals; leave them to the clausal form.
            if (eq) return false;
            const Expr* pos = nullptr;
            const Expr* neg = nullptr;
            for (const auto& [t, c] : lin.coeffs) {
                if (c == 1) pos = t;
                else if (c == -1) neg = t;
            }
            if (!pos || !neg) return false;
            SymBound b;
            b.strict = lin.constant == 1;  // t1 + 1 <= t2  is  t1 < t2
            b.text = sym::to_string(neg, param_names);
            if (lin.constant != 0 && lin.constant != 1) {
                const std::int64_t shift = -lin.constant;
                b.text += shift >= 0 ? " + " + std::to_string(shift)
                                     : " - " + std::to_string(-shift);
            }
            VarRange& v = range_for(pos);
            if (!has_bound(v.sym_hi, b)) {
                v.sym_hi.push_back(std::move(b));
                ++bound_count;
            }
            return true;
        }
        return false;
    }

    /// Dispatches one conjunct atom. Boolean literals (null checks, bool
    /// params) pass through verbatim; comparisons must fold into bounds.
    bool conjunct(const Expr* e) {
        switch (e->kind) {
            case Kind::Eq: case Kind::Ne: case Kind::Lt:
            case Kind::Le: case Kind::Gt: case Kind::Ge: {
                if (e->child0->sort != Sort::Int) break;  // obj ==/!= null etc.
                Lin lin;
                Kind op = e->kind;
                const Expr* lhs = e->child0;
                const Expr* rhs = e->child1;
                if (op == Kind::Gt || op == Kind::Ge) {
                    std::swap(lhs, rhs);
                    op = op == Kind::Gt ? Kind::Lt : Kind::Le;
                }
                if (op == Kind::Ne) return false;  // punctured ranges are not ranges
                if (!linearize(lhs, 1, lin) || !linearize(rhs, -1, lin)) return false;
                if (op == Kind::Lt &&
                    __builtin_add_overflow(lin.constant, 1, &lin.constant))
                    return false;
                lin.coeffs.erase(
                    std::remove_if(lin.coeffs.begin(), lin.coeffs.end(),
                                   [](const auto& tc) { return tc.second == 0; }),
                    lin.coeffs.end());
                if (lin.coeffs.empty()) return false;  // trivial or absurd
                return record(std::move(lin), op == Kind::Eq);
            }
            default: break;
        }
        // Literal side condition: boolean, connective-free.
        if (e->sort != Sort::Bool) return false;
        if (core::expr_connectives(e) > 0 && e->kind != Kind::Not) return false;
        if (e->kind == Kind::Not && core::expr_connectives(e->child0) > 0)
            return false;
        literal_connectives += core::expr_connectives(e);
        literals.push_back(sym::to_string(e, param_names));
        return true;
    }
};

/// Renders one variable's interval: a single `lo <= v < hi` chain when
/// exactly one bound exists per side, otherwise the bounds conjoined.
void render(const VarRange& v, std::span<const std::string> param_names,
            std::vector<std::string>& parts) {
    const std::string name = sym::to_string(v.term, param_names);
    if (v.lo && v.hi && *v.lo == *v.hi && v.sym_lo.empty() && v.sym_hi.empty()) {
        parts.push_back(name + " == " + std::to_string(*v.lo));
        return;
    }
    std::vector<SymBound> lowers = v.sym_lo;
    if (v.lo) lowers.insert(lowers.begin(), {std::to_string(*v.lo), false});
    std::vector<SymBound> uppers = v.sym_hi;
    if (v.hi) uppers.insert(uppers.begin(), {std::to_string(*v.hi), false});
    if (lowers.size() == 1 && uppers.size() == 1) {
        parts.push_back(lowers[0].text + (lowers[0].strict ? " < " : " <= ") +
                        name + (uppers[0].strict ? " < " : " <= ") +
                        uppers[0].text);
        return;
    }
    for (const SymBound& b : lowers) {
        parts.push_back(b.text + (b.strict ? " < " : " <= ") + name);
    }
    for (const SymBound& b : uppers) {
        parts.push_back(name + (b.strict ? " < " : " <= ") + b.text);
    }
}

}  // namespace

RangeForm to_range_form(const core::PredPtr& pred,
                        std::span<const std::string> param_names) {
    RangeForm out;
    if (!pred) return out;
    // Flatten the (already make_and-flattened) top level; any non-atom
    // structure — quantifiers, disjunctions, nested Nots — is outside the
    // fragment.
    // Atom nodes may carry a null expression (core/complexity.cpp guards
    // the same way); they are outside the fragment like any other shape.
    std::vector<const Expr*> atoms;
    if (pred->kind == core::PredKind::Atom) {
        if (pred->atom == nullptr) return out;
        atoms.push_back(pred->atom);
    } else if (pred->kind == core::PredKind::And) {
        for (const core::PredPtr& kid : pred->kids) {
            if (kid->kind != core::PredKind::Atom || kid->atom == nullptr)
                return out;
            atoms.push_back(kid->atom);
        }
    } else {
        return out;
    }

    Collector collector;
    collector.param_names = param_names;
    for (const Expr* atom : atoms) {
        if (!collector.conjunct(atom)) return out;
    }
    if (collector.bound_count == 0) return out;  // no interval content

    std::vector<std::string> parts = std::move(collector.literals);
    const int literal_count = static_cast<int>(parts.size());
    for (const VarRange& v : collector.vars) {
        std::vector<std::string> var_parts;
        render(v, param_names, var_parts);
        for (std::string& p : var_parts) parts.push_back(std::move(p));
    }
    // Definition-3 complexity of the equivalent conjunction: one connective
    // per additional relation. Merged constant bounds collapse duplicates,
    // so count what is actually rendered: singletons are one relation,
    // chains (`0 <= i < a.len`) two, loose bounds one each.
    int rendered_relations = literal_count;
    for (const VarRange& v : collector.vars) {
        if (v.lo && v.hi && *v.lo == *v.hi && v.sym_lo.empty() && v.sym_hi.empty()) {
            rendered_relations += 1;
            continue;
        }
        rendered_relations += static_cast<int>(v.sym_lo.size() + v.sym_hi.size()) +
                              (v.lo ? 1 : 0) + (v.hi ? 1 : 0);
    }
    out.is_range = true;
    out.complexity = (rendered_relations > 0 ? rendered_relations - 1 : 0) +
                     collector.literal_connectives;
    std::string printed;
    for (std::size_t i = 0; i < parts.size(); ++i) {
        if (i > 0) printed += " && ";
        printed += parts[i];
    }
    out.printed = std::move(printed);
    return out;
}

}  // namespace preinfer::eval
