#include "src/eval/spec.h"

#include <unordered_map>

#include "src/lang/lexer.h"
#include "src/support/diagnostics.h"

namespace preinfer::eval {

namespace {

using lang::TokKind;
using lang::Token;
using lang::Type;
using sym::Expr;
using sym::Sort;

/// A typed symbolic value during spec elaboration; mirrors the MiniLang
/// type system so indexing/.len rules match the language exactly.
struct SpecVal {
    const Expr* expr = nullptr;
    Type type = Type::Void;  ///< Void marks the bare null literal
};

class SpecParser {
public:
    SpecParser(sym::ExprPool& pool, const lang::Method& method, std::string_view text)
        : pool_(pool), method_(method), tokens_(lang::lex(text)) {}

    core::PredPtr parse() {
        core::PredPtr p = parse_pred();
        expect(TokKind::End, "specification");
        return p;
    }

private:
    // --- token plumbing ---------------------------------------------------
    [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
        const std::size_t i = pos_ + ahead;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }
    [[nodiscard]] bool at(TokKind k) const { return peek().kind == k; }
    const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
    bool accept(TokKind k) {
        if (!at(k)) return false;
        advance();
        return true;
    }
    const Token& expect(TokKind k, const char* what) {
        if (!at(k)) {
            fail(std::string("expected ") + lang::tok_kind_name(k) + " in " + what +
                 ", found " + lang::tok_kind_name(peek().kind));
        }
        return advance();
    }
    [[noreturn]] void fail(const std::string& message) const {
        throw support::FrontendError("spec: " + message, peek().loc);
    }

    [[nodiscard]] bool at_quantifier() const {
        return at(TokKind::Ident) && (peek().text == "forall" || peek().text == "exists");
    }

    // --- predicate level ---------------------------------------------------
    core::PredPtr parse_pred() {
        std::vector<core::PredPtr> disjuncts{parse_conj()};
        while (accept(TokKind::PipePipe)) disjuncts.push_back(parse_conj());
        return core::make_or(std::move(disjuncts));
    }

    core::PredPtr parse_conj() {
        std::vector<core::PredPtr> conjuncts{parse_unit()};
        while (accept(TokKind::AmpAmp)) conjuncts.push_back(parse_unit());
        return core::make_and(std::move(conjuncts));
    }

    core::PredPtr parse_unit() {
        if (at_quantifier()) return parse_quantifier();
        if (at(TokKind::Bang)) {
            advance();
            return core::make_not(parse_unit());
        }
        if (at(TokKind::LParen)) {
            // Could be a parenthesized predicate (possibly holding a
            // quantifier) or the start of an arithmetic expression like
            // `(x + 1) > 0`. Try the predicate reading; backtrack if the
            // closing paren is followed by expression syntax.
            const std::size_t saved = pos_;
            advance();
            try {
                core::PredPtr inner = parse_pred();
                expect(TokKind::RParen, "parenthesized predicate");
                if (expression_continues()) {
                    pos_ = saved;
                } else {
                    return inner;
                }
            } catch (const support::FrontendError&) {
                pos_ = saved;
            }
        }
        // Atoms stop at comparison level so that top-level && / || become
        // predicate structure (and a following quantifier is not swallowed
        // by the expression grammar). Inside quantifier bodies parse_expr
        // handles the full boolean grammar instead.
        const SpecVal v = parse_cmp_expr();
        require_bool(v, "predicate atom");
        return core::make_atom(v.expr);
    }

    /// After a ")" that closed a predicate: tokens that mean we actually
    /// parenthesized a sub-expression of a larger comparison/arithmetic.
    [[nodiscard]] bool expression_continues() const {
        switch (peek().kind) {
            case TokKind::Plus: case TokKind::Minus: case TokKind::Star:
            case TokKind::Slash: case TokKind::Percent:
            case TokKind::EqEq: case TokKind::BangEq:
            case TokKind::Lt: case TokKind::Le:
            case TokKind::Gt: case TokKind::Ge:
            case TokKind::LBracket: case TokKind::Dot:
                return true;
            default:
                return false;
        }
    }

    core::PredPtr parse_quantifier() {
        const bool universal = advance().text == "forall";
        const std::string var = expect(TokKind::Ident, "quantifier").text;
        const Token& kw = expect(TokKind::Ident, "quantifier");
        if (kw.text != "in") fail("expected 'in' after quantifier variable");
        const std::string coll = expect(TokKind::Ident, "quantifier").text;
        expect(TokKind::Colon, "quantifier");

        const SpecVal obj = resolve_name(coll);
        if (!lang::is_indexable_type(obj.type)) {
            fail("quantifier collection '" + coll + "' is not indexable");
        }
        const int bound_id = next_bound_id_++;
        bound_.push_back({var, bound_id, obj});
        const SpecVal body = parse_expr();
        bound_.pop_back();
        require_bool(body, "quantifier body");

        const Expr* bv = pool_.bound_var(bound_id);
        const Expr* domain = pool_.lt(bv, pool_.len(obj.expr));
        return universal ? core::make_forall(bound_id, obj.expr, domain, body.expr)
                         : core::make_exists(bound_id, obj.expr, domain, body.expr);
    }

    // --- expression level (produces sym::Expr) -------------------------------
    void require_bool(const SpecVal& v, const char* what) {
        if (v.type != Type::Bool) fail(std::string(what) + " must be boolean");
    }
    void require_int(const SpecVal& v, const char* what) {
        if (v.type != Type::Int) fail(std::string(what) + " must be an int");
    }

    SpecVal parse_expr() { return parse_or_expr(); }

    SpecVal parse_or_expr() {
        SpecVal l = parse_and_expr();
        while (at(TokKind::PipePipe)) {
            advance();
            SpecVal r = parse_and_expr();
            require_bool(l, "'||' operand");
            require_bool(r, "'||' operand");
            l = {pool_.or_(l.expr, r.expr), Type::Bool};
        }
        return l;
    }

    SpecVal parse_and_expr() {
        SpecVal l = parse_not_expr();
        while (at(TokKind::AmpAmp)) {
            advance();
            SpecVal r = parse_not_expr();
            require_bool(l, "'&&' operand");
            require_bool(r, "'&&' operand");
            l = {pool_.and_(l.expr, r.expr), Type::Bool};
        }
        return l;
    }

    SpecVal parse_not_expr() {
        if (accept(TokKind::Bang)) {
            SpecVal v = parse_not_expr();
            require_bool(v, "'!' operand");
            return {pool_.not_(v.expr), Type::Bool};
        }
        return parse_cmp_expr();
    }

    SpecVal parse_cmp_expr() {
        SpecVal l = parse_add_expr();
        sym::Kind op;
        switch (peek().kind) {
            case TokKind::EqEq: op = sym::Kind::Eq; break;
            case TokKind::BangEq: op = sym::Kind::Ne; break;
            case TokKind::Lt: op = sym::Kind::Lt; break;
            case TokKind::Le: op = sym::Kind::Le; break;
            case TokKind::Gt: op = sym::Kind::Gt; break;
            case TokKind::Ge: op = sym::Kind::Ge; break;
            default: return l;
        }
        advance();
        SpecVal r = parse_add_expr();

        // Null comparisons lower to IsNull.
        const bool l_null = l.type == Type::Void;
        const bool r_null = r.type == Type::Void;
        if (l_null || r_null) {
            if (l_null && r_null) fail("cannot compare null with null");
            const SpecVal& ref = l_null ? r : l;
            if (!lang::is_reference_type(ref.type)) fail("null compared with non-reference");
            if (op != sym::Kind::Eq && op != sym::Kind::Ne) fail("null only supports == / !=");
            const Expr* isnull = pool_.is_null(ref.expr);
            return {op == sym::Kind::Eq ? isnull : pool_.not_(isnull), Type::Bool};
        }
        require_int(l, "comparison operand");
        require_int(r, "comparison operand");
        return {pool_.cmp(op, l.expr, r.expr), Type::Bool};
    }

    SpecVal parse_add_expr() {
        SpecVal l = parse_mul_expr();
        while (at(TokKind::Plus) || at(TokKind::Minus)) {
            const bool add = advance().kind == TokKind::Plus;
            SpecVal r = parse_mul_expr();
            require_int(l, "arithmetic operand");
            require_int(r, "arithmetic operand");
            l = {add ? pool_.add(l.expr, r.expr) : pool_.sub(l.expr, r.expr), Type::Int};
        }
        return l;
    }

    SpecVal parse_mul_expr() {
        SpecVal l = parse_unary_expr();
        while (at(TokKind::Star) || at(TokKind::Slash) || at(TokKind::Percent)) {
            const TokKind k = advance().kind;
            SpecVal r = parse_unary_expr();
            require_int(l, "arithmetic operand");
            require_int(r, "arithmetic operand");
            const Expr* e = k == TokKind::Star   ? pool_.mul(l.expr, r.expr)
                            : k == TokKind::Slash ? pool_.div(l.expr, r.expr)
                                                  : pool_.mod(l.expr, r.expr);
            l = {e, Type::Int};
        }
        return l;
    }

    SpecVal parse_unary_expr() {
        if (accept(TokKind::Minus)) {
            SpecVal v = parse_unary_expr();
            require_int(v, "'-' operand");
            return {pool_.neg(v.expr), Type::Int};
        }
        return parse_postfix_expr();
    }

    SpecVal parse_postfix_expr() {
        SpecVal v = parse_primary_expr();
        for (;;) {
            if (at(TokKind::LBracket)) {
                advance();
                SpecVal idx = parse_expr();
                expect(TokKind::RBracket, "index");
                require_int(idx, "index");
                if (!lang::is_indexable_type(v.type)) fail("indexing a non-collection");
                const Type elem = lang::element_type(v.type);
                v = {pool_.select(v.expr, idx.expr,
                                  lang::is_reference_type(elem) ? Sort::Obj : Sort::Int),
                     elem};
            } else if (at(TokKind::Dot)) {
                advance();
                const Token& field = expect(TokKind::Ident, "member access");
                if (field.text != "len" && field.text != "length") fail("only '.len' exists");
                if (!lang::is_indexable_type(v.type)) fail("'.len' of a non-collection");
                v = {pool_.len(v.expr), Type::Int};
            } else {
                return v;
            }
        }
    }

    SpecVal parse_primary_expr() {
        const Token& t = peek();
        switch (t.kind) {
            case TokKind::IntLit:
                advance();
                return {pool_.int_const(t.int_value), Type::Int};
            case TokKind::KwTrue:
                advance();
                return {pool_.true_(), Type::Bool};
            case TokKind::KwFalse:
                advance();
                return {pool_.false_(), Type::Bool};
            case TokKind::KwNull:
                advance();
                return {pool_.null_const(), Type::Void};
            case TokKind::LParen: {
                advance();
                SpecVal v = parse_expr();
                expect(TokKind::RParen, "parenthesized expression");
                return v;
            }
            case TokKind::Ident: {
                advance();
                if (t.text == "iswhitespace") {
                    expect(TokKind::LParen, "iswhitespace");
                    SpecVal arg = parse_expr();
                    expect(TokKind::RParen, "iswhitespace");
                    require_int(arg, "iswhitespace argument");
                    return {pool_.is_whitespace(arg.expr), Type::Bool};
                }
                return resolve_name(t.text);
            }
            default:
                fail(std::string("expected an expression, found ") +
                     lang::tok_kind_name(t.kind));
        }
    }

    SpecVal resolve_name(const std::string& name) {
        for (auto it = bound_.rbegin(); it != bound_.rend(); ++it) {
            if (it->name == name) return {pool_.bound_var(it->id), Type::Int};
        }
        const int idx = method_.param_index(name);
        if (idx < 0) fail("unknown name '" + name + "' in specification");
        const Type t = method_.params[static_cast<std::size_t>(idx)].type;
        const Sort sort = lang::is_reference_type(t)
                              ? Sort::Obj
                              : (t == Type::Bool ? Sort::Bool : Sort::Int);
        return {pool_.param(idx, sort), t};
    }

    struct Bound {
        std::string name;
        int id;
        SpecVal obj;
    };

    sym::ExprPool& pool_;
    const lang::Method& method_;
    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    std::vector<Bound> bound_;
    int next_bound_id_ = 0;
};

}  // namespace

core::PredPtr parse_spec(sym::ExprPool& pool, const lang::Method& method,
                         std::string_view spec) {
    return SpecParser(pool, method, spec).parse();
}

}  // namespace preinfer::eval
