// Extended corpus: additional methods per namespace, growing the ACL count
// toward the paper's scale and adding interprocedural subjects (the first
// method of a source is the method under test; the rest are callees).

#include "src/eval/corpus.h"

namespace preinfer::eval {

namespace {
using K = core::ExceptionKind;
}  // namespace

void add_extended_sorting(Subject& s) {
    s.methods.push_back(
        {"insertion_shift", R"(
method insertion_shift(xs: int[], from: int) : int {
    assert(xs != null);
    assert(0 <= from && from < xs.len);
    var v = xs[from];
    return v;
})",
         {{K::AssertionViolation, 0, "xs != null"},
          {K::AssertionViolation, 1, "xs == null || (0 <= from && from < xs.len)"}}});

    s.methods.push_back(
        {"min_index_from", R"(
method min_index_from(xs: int[], start: int) : int {
    if (xs == null) { return -1; }
    var best = xs[start];
    var bi = start;
    for (var i = start + 1; i < xs.len; i = i + 1) {
        if (xs[i] < best) { best = xs[i]; bi = i; }
    }
    return bi;
})",
         {{K::IndexOutOfRange, 0, "xs == null || (0 <= start && start < xs.len)"}}});

    s.methods.push_back({"median_of_three", R"(
method median_of_three(xs: int[]) : int {
    var n = xs.len;
    var a = xs[0];
    var b = xs[n / 2];
    var c = xs[n - 1];
    if (a > b) { var t = a; a = b; b = t; }
    if (b > c) { var t2 = b; b = c; c = t2; }
    if (a > b) { var t3 = a; a = b; b = t3; }
    return b;
})",
                         {{K::NullReference, 0, "xs != null"},
                          {K::IndexOutOfRange, 0, "xs == null || xs.len > 0"}}});

    s.methods.push_back(
        {"bubble_pass_guarded", R"(
method bubble_pass_guarded(xs: int[], n: int) : int {
    if (xs == null) { return 0; }
    var swaps = 0;
    for (var j = 0; j < n - 1; j = j + 1) {
        if (xs[j] > xs[j + 1]) {
            var t = xs[j];
            xs[j] = xs[j + 1];
            xs[j + 1] = t;
            swaps = swaps + 1;
        }
    }
    return swaps;
})",
         {{K::IndexOutOfRange, 0, "xs == null || xs.len > 0 || n <= 1"},
          {K::IndexOutOfRange, 1, "xs == null || xs.len == 0 || n <= xs.len"}}});

    // A branch guarded by a constraint outside the solver's reach
    // (12345 = 3*5*823 is not a sum of two squares, and the non-linear
    // search will not prove it): the generator leaves it uncovered, which
    // is exactly how Pex's coverage gaps arise on the paper's subjects.
    s.methods.push_back({"hash_gate", R"(
method hash_gate(x: int, y: int) : int {
    var h = x * x + y * y;
    if (h == 12345) {
        return 1;
    }
    return 100 / x;
})",
                         {{K::DivideByZero, 0, "x != 0"}}});

    // Interprocedural: the failing access sits in a callee.
    s.methods.push_back(
        {"select_smallest", R"(
method select_smallest(xs: int[]) : int {
    assert(xs != null);
    return pick_at(xs, 0);
}
method pick_at(ys: int[], i: int) : int {
    return ys[i];
})",
         {{K::AssertionViolation, 0, "xs != null"},
          {K::IndexOutOfRange, 0, "xs == null || xs.len > 0"}}});
}

void add_extended_general_data_structures(Subject& s) {
    s.methods.push_back(
        {"queue_peek", R"(
method queue_peek(xs: int[], head: int, count: int) : int {
    assert(count > 0);
    return xs[head];
})",
         {{K::AssertionViolation, 0, "count > 0"},
          {K::NullReference, 0, "count <= 0 || xs != null"},
          {K::IndexOutOfRange, 0,
           "count <= 0 || xs == null || (0 <= head && head < xs.len)"}}});

    s.methods.push_back(
        {"deque_back", R"(
method deque_back(xs: int[], size: int) : int {
    if (size == 0) { return -1; }
    return xs[size - 1];
})",
         {{K::NullReference, 0, "size == 0 || xs != null"},
          {K::IndexOutOfRange, 0,
           "size == 0 || xs == null || (size >= 1 && size <= xs.len)"}}});

    // Interprocedural + quantified: the search loop lives in the callee.
    s.methods.push_back(
        {"set_contains", R"(
method set_contains(xs: int[], v: int) : int {
    var idx = find_index(xs, v);
    assert(idx >= 0);
    return idx;
}
method find_index(ys: int[], w: int) : int {
    if (ys == null) { return -1; }
    for (var i = 0; i < ys.len; i = i + 1) {
        if (ys[i] == w) { return i; }
    }
    return -1;
})",
         {{K::AssertionViolation, 0,
           "xs != null && (exists i in xs: xs[i] == v)"}}});

    s.methods.push_back(
        {"ring_put", R"(
method ring_put(xs: int[], idx: int, v: int) : int {
    var next = (idx + 1) % xs.len;
    xs[next] = v;
    return next;
})",
         // The negative-remainder IndexOutOfRange ((idx+1) % len < 0) is
         // real but needs an input shape the generator essentially never
         // produces (index concretization pins the write index), so only
         // the reliably-triggered locations carry ground truths.
         {{K::NullReference, 0, "xs != null"},
          {K::DivideByZero, 0, "xs == null || xs.len != 0"}}});

    s.methods.push_back(
        {"transfer_first", R"(
method transfer_first(a: int[], b: int[]) : int {
    var v = a[0];
    b[0] = v;
    return v;
})",
         {{K::NullReference, 0, "a != null"},
          {K::NullReference, 1, "a == null || a.len == 0 || b != null"},
          {K::IndexOutOfRange, 0, "a == null || a.len > 0"},
          {K::IndexOutOfRange, 1,
           "a == null || a.len == 0 || b == null || b.len > 0"}}});
}

void add_extended_dsa(Subject& s) {
    // Two-index body: beyond the syntactic templates (paper limitation).
    s.methods.push_back(
        {"palindrome_assert", R"(
method palindrome_assert(st: str) : int {
    if (st == null) { return 0; }
    var n = st.len;
    for (var i = 0; i + i < n; i = i + 1) {
        assert(st[i] == st[n - 1 - i]);
    }
    return 1;
})",
         {{K::AssertionViolation, 0,
           "st == null || (forall i in st: i + i >= st.len || "
           "st[i] == st[st.len - 1 - i])"}}});

    s.methods.push_back(
        {"count_vowel_a", R"(
method count_vowel_a(st: str) : int {
    if (st == null) { return 0; }
    var count = 0;
    for (var i = 0; i < st.len; i = i + 1) {
        if (st[i] == 'a') { count = count + 1; }
    }
    assert(count > 0);
    return count;
})",
         {{K::AssertionViolation, 0, "st == null || (exists i in st: st[i] == 'a')"}}});

    s.methods.push_back(
        {"starts_with", R"(
method starts_with(st: str, prefix: str) : int {
    if (st == null) { return 0; }
    if (prefix == null) { return 0; }
    if (prefix.len > st.len) { return 0; }
    for (var i = 0; i < prefix.len; i = i + 1) {
        assert(st[i] == prefix[i]);
    }
    return 1;
})",
         {{K::AssertionViolation, 0,
           "st == null || prefix == null || prefix.len > st.len || "
           "(forall i in prefix: st[i] == prefix[i])"}}});

    s.methods.push_back(
        {"char_offset_div", R"(
method char_offset_div(st: str) : int {
    if (st == null) { return 0; }
    var total = 0;
    for (var i = 0; i < st.len; i = i + 1) {
        total = total + 1000 / (st[i] - 'a');
    }
    return total;
})",
         {{K::DivideByZero, 0, "st == null || (forall i in st: st[i] != 'a')"}}});

    // Product-of-characters gate: var*var equalities defeat the bound
    // propagation, leaving the branch uncovered (a deliberate Table IV
    // coverage gap).
    s.methods.push_back(
        {"product_gate", R"(
method product_gate(st: str) : int {
    if (st == null) { return 0; }
    if (st.len < 2) { return 0; }
    if (st[0] * st[1] == 7957) {
        return 1;
    }
    return 1000 / (st[0] - st[1]);
})",
         {{K::DivideByZero, 0, "st == null || st.len < 2 || st[0] != st[1]"}}});

    // Interprocedural universal case: the scanning loop is in the callee.
    s.methods.push_back(
        {"first_char_of_word", R"(
method first_char_of_word(st: str) : int {
    var w = skip_spaces(st);
    return st[w];
}
method skip_spaces(t: str) : int {
    var i = 0;
    while (i < t.len && iswhitespace(t[i])) { i = i + 1; }
    return i;
})",
         {{K::NullReference, 0, "st != null"},
          {K::IndexOutOfRange, 0,
           "st == null || (exists i in st: !iswhitespace(st[i]))"}}});
}

void add_extended_examples_puri(Subject& s) {
    s.methods.push_back({"abs_then_div", R"(
method abs_then_div(a: int) : int {
    if (a < 0) { a = -a; }
    return 100 / a;
})",
                         {{K::DivideByZero, 0, "a != 0"}}});

    s.methods.push_back({"clamp_div", R"(
method clamp_div(v: int) : int {
    var c = v;
    if (c > 100) { c = 100; }
    if (c < -100) { c = -100; }
    return 1000 / c;
})",
                         {{K::DivideByZero, 0, "v != 0"}}});

    s.methods.push_back({"sum_guard3", R"(
method sum_guard3(a: int, b: int, c: int) : int {
    assert(a + b + c != 0);
    return a + b + c;
})",
                         {{K::AssertionViolation, 0, "a + b + c != 0"}}});

    s.methods.push_back({"parity_gate", R"(
method parity_gate(x: int) : int {
    if (x % 2 == 0) {
        assert(x != 4);
    }
    return x;
})",
                         {{K::AssertionViolation, 0, "x % 2 != 0 || x != 4"}}});

    // Interprocedural: the assertion fails on a transformed argument.
    s.methods.push_back({"outer_gate", R"(
method outer_gate(p: int) : int {
    return inner_gate(p + 1);
}
method inner_gate(q: int) : int {
    assert(q != 10);
    return q;
})",
                         {{K::AssertionViolation, 0, "p != 9"}}});
}

void add_extended_preinference(Subject& s) {
    s.methods.push_back(
        {"three_correlated", R"(
method three_correlated(p: int, q: int, r: int) : int {
    var x = p;
    if (q > 0) { x = x + 1; }
    if (r > 0) { x = x + 1; }
    if (x == 5) { assert(false); }
    return x;
})",
         {{K::AssertionViolation, 0,
           "(q <= 0 || r <= 0 || p != 3) && (q <= 0 || r > 0 || p != 4) && "
           "(q > 0 || r <= 0 || p != 4) && (q > 0 || r > 0 || p != 5)"}}});

    // Counted-loop accumulation with a concrete assert: exercises the
    // visits-based reachability + interval-union pipeline.
    s.methods.push_back({"loop_sum_gate", R"(
method loop_sum_gate(n: int) : int {
    var sum = 0;
    for (var i = 0; i < n; i = i + 1) { sum = sum + i; }
    assert(sum < 50);
    return sum;
})",
                         {{K::AssertionViolation, 0, "n <= 10"}}});

    s.methods.push_back(
        {"guarded_mod_chain", R"(
method guarded_mod_chain(k: int, m: int) : int {
    if (m > 0) {
        if (k % 4 == 2) { assert(false); }
    }
    return k;
})",
         {{K::AssertionViolation, 0, "m <= 0 || k % 4 != 2"}}});

    s.methods.push_back(
        {"deep_nest", R"(
method deep_nest(v: int) : int {
    if (v > 0) {
        if (v < 100) {
            if (v % 10 == 3) {
                if (v > 50) {
                    assert(false);
                }
            }
        }
    }
    return v;
})",
         {{K::AssertionViolation, 0,
           "v <= 0 || v >= 100 || v % 10 != 3 || v <= 50"}}});
}

void add_extended_array_purity(Subject& s) {
    // Nested element observer: outside the template fragment.
    s.methods.push_back(
        {"first_of_each", R"(
method first_of_each(ss: str[]) : int {
    if (ss == null) { return 0; }
    var sum = 0;
    for (var i = 0; i < ss.len; i = i + 1) {
        if (ss[i] != null) {
            sum = sum + ss[i][0];
        }
    }
    return sum;
})",
         {{K::IndexOutOfRange, 0,
           "ss == null || (forall i in ss: ss[i] == null || ss[i].len > 0)"}}});

    s.methods.push_back(
        {"scaled_access", R"(
method scaled_access(xs: int[], k: int) : int {
    if (xs == null) { return 0; }
    return xs[2 * k];
})",
         {{K::IndexOutOfRange, 0,
           "xs == null || (0 <= 2 * k && 2 * k < xs.len)"}}});

    // Interprocedural exists: counting happens in the callee.
    s.methods.push_back(
        {"require_positive_entry", R"(
method require_positive_entry(xs: int[]) : int {
    var count = count_positive(xs);
    assert(count > 0);
    return count;
}
method count_positive(ys: int[]) : int {
    if (ys == null) { return 0; }
    var c = 0;
    for (var i = 0; i < ys.len; i = i + 1) {
        if (ys[i] > 0) { c = c + 1; }
    }
    return c;
})",
         {{K::AssertionViolation, 0,
           "xs != null && (exists i in xs: xs[i] > 0)"}}});

    // Guard and divisor check state the same property with flipped
    // operand orientation ("0 != xs[i]" vs "xs[i] != 0"): syntactic
    // template matching fails here; solver-backed equivalence (the paper's
    // Section V-C improvement, --semantic-templates) recovers it.
    s.methods.push_back(
        {"guarded_divide_chain", R"(
method guarded_divide_chain(xs: int[]) : int {
    if (xs == null) { return 0; }
    var total = 0;
    for (var i = 0; i < xs.len; i = i + 1) {
        if (0 != xs[i]) {
            total = total + 1;
        }
        total = total + 100 / xs[i];
    }
    return total;
})",
         {{K::DivideByZero, 0, "xs == null || (forall i in xs: xs[i] != 0)"}}});

    // The paper's worked template extension: all even-indexed elements
    // satisfy the property and the failure fires after the loop.
    s.methods.push_back(
        {"even_energy", R"(
method even_energy(xs: int[]) : int {
    if (xs == null) { return 0; }
    var count = 0;
    for (var i = 0; i < xs.len; i = i + 2) {
        if (xs[i] != 0) { count = count + 1; }
    }
    return 100 / count;
})",
         {{K::DivideByZero, 0,
           "xs == null || (exists i in xs: i % 2 == 0 && xs[i] != 0)"}}});

    s.methods.push_back(
        {"array_min_call", R"(
method array_min_call(xs: int[]) : int {
    assert(xs != null);
    return min_at_zero(xs);
}
method min_at_zero(ys: int[]) : int {
    var best = ys[0];
    for (var i = 1; i < ys.len; i = i + 1) {
        if (ys[i] < best) { best = ys[i]; }
    }
    return best;
})",
         {{K::AssertionViolation, 0, "xs != null"},
          {K::IndexOutOfRange, 0, "xs == null || xs.len > 0"}}});
}

void add_extended_svcomp(Subject& s) {
    s.methods.push_back(
        {"two_counters", R"(
method two_counters(n: int, m: int) : int {
    var i = 0;
    var j = 0;
    while (i < n) { i = i + 1; }
    while (j < m) { j = j + 1; }
    assert(i + j < 12);
    return i + j;
})",
         {{K::AssertionViolation, 0,
           "(n <= 0 || m <= 0 || n + m < 12) && (m > 0 || n < 12) && "
           "(n > 0 || m < 12)"}}});

    // Symmetric two-index access: beyond the syntactic templates.
    s.methods.push_back(
        {"mirror_check", R"(
method mirror_check(a: int[]) : int {
    if (a == null) { return 0; }
    var n = a.len;
    for (var i = 0; i < n; i = i + 1) {
        assert(a[i] == a[n - 1 - i]);
    }
    return 1;
})",
         {{K::AssertionViolation, 0,
           "a == null || (forall i in a: a[i] == a[a.len - 1 - i])"}}});

    s.methods.push_back(
        {"guarded_division_loop", R"(
method guarded_division_loop(a: int[], d: int) : int {
    var total = 0;
    var n = a.len;
    for (var i = 0; i < n; i = i + 1) {
        if (a[i] > 0) {
            total = total + a[i] / d;
        }
    }
    return total;
})",
         {{K::NullReference, 0, "a != null"},
          {K::DivideByZero, 0,
           "a == null || d != 0 || (forall i in a: a[i] <= 0)"}}});

    // Interprocedural bounds: the loop drives a checked callee.
    s.methods.push_back(
        {"safe_sum", R"(
method safe_sum(a: int[], upto: int) : int {
    var s = 0;
    for (var i = 0; i < upto; i = i + 1) {
        s = s + get(a, i);
    }
    return s;
}
method get(b: int[], i: int) : int {
    return b[i];
})",
         {{K::NullReference, 0, "upto <= 0 || a != null"},
          {K::IndexOutOfRange, 0,
           "upto <= 0 || a == null || upto <= a.len"}}});
}

}  // namespace preinfer::eval
