#include "src/eval/paper_metrics.h"

#include "src/core/pred_eval.h"
#include "src/gen/explorer.h"
#include "src/gen/fuzzer.h"

namespace preinfer::eval {

Strength evaluate_strength(const lang::Method& method, core::AclId acl,
                           const core::PredPtr& precondition,
                           const gen::TestSuite& validation) {
    Strength s;
    for (const gen::Test& t : validation.tests) {
        if (!t.usable()) continue;
        const exec::InputEvalEnv env(method, t.input);
        const bool validated = core::eval_pred(precondition, env);
        const bool fails_here =
            t.result.outcome.failing() && t.result.outcome.acl == acl;
        if (fails_here) {
            ++s.failing_total;
            if (!validated) {
                ++s.failing_blocked;
            } else {
                s.sufficient = false;
            }
        } else {
            ++s.passing_total;
            if (validated) {
                ++s.passing_validated;
            } else {
                s.necessary = false;
            }
        }
    }
    return s;
}

gen::TestSuite build_validation_suite(sym::ExprPool& pool, const lang::Method& method,
                                      const ValidationConfig& config,
                                      const lang::Program* program,
                                      solver::SolveCache* cache,
                                      gen::Explorer::Stats* explorer_stats,
                                      solver::AtomIndex* index) {
    gen::Explorer explorer(pool, method, config.explore, program, cache, index);
    gen::TestSuite suite = explorer.explore();
    if (explorer_stats) *explorer_stats = explorer.stats();

    gen::Fuzzer fuzzer(method, config.fuzz_seed);
    const std::unique_ptr<exec::Executor> interp = exec::make_executor(
        config.explore.backend, pool, method, config.explore.exec_limits, program);
    for (int i = 0; i < config.fuzz_count; ++i) {
        gen::Test t;
        t.id = -1000 - i;
        t.input = fuzzer.next();
        t.result = interp->run(t.input);
        suite.tests.push_back(std::move(t));
    }
    return suite;
}

}  // namespace preinfer::eval
