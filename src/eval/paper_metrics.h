#pragma once

#include "src/core/pred.h"
#include "src/gen/explorer.h"

namespace preinfer::eval {

/// Sufficiency / necessity verdict of a precondition candidate against a
/// validation suite (Section V-B): a test counts as failing iff it aborts
/// at the target ACL; any other usable outcome is passing. Sufficient =
/// the candidate invalidates every failing state; necessary = it validates
/// every passing state.
struct Strength {
    bool sufficient = true;
    bool necessary = true;
    int failing_total = 0;
    int failing_blocked = 0;
    int passing_total = 0;
    int passing_validated = 0;

    [[nodiscard]] bool both() const { return sufficient && necessary; }
};

[[nodiscard]] Strength evaluate_strength(const lang::Method& method, core::AclId acl,
                                         const core::PredPtr& precondition,
                                         const gen::TestSuite& validation);

/// Builds the validation suite: a larger symbolic exploration plus random
/// fuzz inputs — the paper's "test the strength of pred using Pex"
/// methodology, widened so verdicts are not judged only on inference paths.
struct ValidationConfig {
    gen::ExplorerConfig explore{};
    int fuzz_count = 200;
    std::uint64_t fuzz_seed = 7;
};

/// `cache`, when non-null, memoizes the validation explorer's solver
/// queries; because validation replays the inference exploration with a
/// larger budget, sharing the inference run's cache skips most of the
/// re-solving. Only pass a cache built against the same pool and solver
/// config. `index`, when non-null, shares atom-normalization records with
/// the other explorers on the pool (safe even across differing solver
/// configs). `explorer_stats`, when non-null, receives the validation
/// explorer's own Stats — the only way the caller can attribute the
/// shared cache's lookups to the validation phase (the explorer dies
/// inside this function).
[[nodiscard]] gen::TestSuite build_validation_suite(
    sym::ExprPool& pool, const lang::Method& method, const ValidationConfig& config,
    const lang::Program* program = nullptr, solver::SolveCache* cache = nullptr,
    gen::Explorer::Stats* explorer_stats = nullptr,
    solver::AtomIndex* index = nullptr);

}  // namespace preinfer::eval
