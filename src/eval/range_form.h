#pragma once

#include <span>
#include <string>

#include "src/core/pred.h"

namespace preinfer::eval {

/// Range-shaped rendering of a precondition (the second output layer of the
/// interval pre-pass work): when a quantifier-free formula is equivalent to
/// a conjunction of per-variable bounds, it can be reported as intervals —
/// `0 <= i < a.len` — instead of the clause list the inference engine
/// prints. The detection is purely syntactic over the already-simplified
/// formula (no solver, no pool allocation), so emitting it cannot perturb
/// expression ids or any downstream fingerprint.
struct RangeForm {
    /// The formula is a conjunction of single-variable constant bounds,
    /// unit-coefficient two-term bounds (`i < a.len`), and boolean literal
    /// side conditions (`!(s == null)`), with at least one actual bound.
    bool is_range = false;
    /// Complexity of the emitted form under the paper's Definition 3
    /// metric (connectives only; a chain `0 <= i < a.len` is two
    /// comparisons, one connective) — directly comparable to the
    /// ApproachOutcome complexity scored for PreInfer/FixIt/DySy.
    int complexity = 0;
    std::string printed;  ///< empty unless is_range
};

/// Attempts the range-shaped rendering of `pred`. Never fails loudly: a
/// formula outside the fragment (quantifiers, disjunctions, non-unit
/// coefficients, contradictory constant bounds) just returns
/// `is_range == false`.
[[nodiscard]] RangeForm to_range_form(const core::PredPtr& pred,
                                      std::span<const std::string> param_names);

}  // namespace preinfer::eval
