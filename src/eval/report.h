#pragma once

#include <iosfwd>

#include "src/eval/harness.h"

namespace preinfer::eval {

/// Writes one CSV row per assertion-containing location of a harness run:
/// subject, method, exception kind, loop position, per-approach verdicts
/// and complexities, ground-truth data. Strings are quoted/escaped per
/// RFC 4180. Intended for external analysis of the evaluation
/// (spreadsheets, pandas); the table benches emit it when the
/// PREINFER_CSV environment variable names a file.
void write_acl_csv(const HarnessResult& result, std::ostream& out);

/// Per-method rows: coverage, test counts, ACL counts, per-method wall time
/// and solver-cache hit accounting. wall_ms is the only column that varies
/// between otherwise identical runs.
void write_method_csv(const HarnessResult& result, std::ostream& out);

/// Convenience used by the bench binaries: when the named environment
/// variable is set, writes the ACL CSV to that path and returns true.
bool maybe_write_csv_from_env(const HarnessResult& result,
                              const char* env_var = "PREINFER_CSV");

}  // namespace preinfer::eval
