// Third corpus batch: subjects exercising `break` / `continue` control flow
// plus more hard shapes (non-linear accumulators, bounded-prefix
// conditions), further closing the gap to the paper's 188 evaluated
// assertion-containing locations.

#include "src/eval/corpus.h"

namespace preinfer::eval {

namespace {
using K = core::ExceptionKind;
}  // namespace

void add_batch3_sorting(Subject& s) {
    // First adjacent inversion via break: two-index body, quantified ground
    // truth beyond the syntactic templates.
    s.methods.push_back(
        {"find_first_unsorted", R"(
method find_first_unsorted(xs: int[]) : int {
    if (xs == null) { return -1; }
    var at = -1;
    for (var i = 0; i + 1 < xs.len; i = i + 1) {
        if (xs[i] > xs[i + 1]) { at = i; break; }
    }
    assert(at >= 0);
    return at;
})",
         {{K::AssertionViolation, 0,
           "xs == null || (exists i in xs: i + 1 < xs.len && xs[i] > xs[i + 1])"}}});

    s.methods.push_back(
        {"sum_skip_negatives", R"(
method sum_skip_negatives(xs: int[]) : int {
    var total = 0;
    var n = xs.len;
    for (var i = 0; i < n; i = i + 1) {
        if (xs[i] < 0) { continue; }
        total = total + 100 / xs[i];
    }
    return total;
})",
         {{K::NullReference, 0, "xs != null"},
          {K::DivideByZero, 0, "xs == null || (forall i in xs: xs[i] != 0)"}}});
}

void add_batch3_general_data_structures(Subject& s) {
    s.methods.push_back(
        {"find_slot", R"(
method find_slot(xs: int[]) : int {
    assert(xs != null);
    var slot = -1;
    for (var i = 0; i < xs.len; i = i + 1) {
        if (xs[i] == 0) { slot = i; break; }
    }
    assert(slot != -1);
    xs[slot] = 7;
    return slot;
})",
         {{K::AssertionViolation, 0, "xs != null"},
          {K::AssertionViolation, 1,
           "xs == null || (exists i in xs: xs[i] == 0)"}}});

    s.methods.push_back(
        {"drain_until", R"(
method drain_until(xs: int[], stop: int) : int {
    if (xs == null) { return 0; }
    var drained = 0;
    for (var i = 0; i < xs.len; i = i + 1) {
        if (xs[i] == stop) { break; }
        drained = drained + 1;
    }
    return 100 / (xs.len - drained);
})",
         {{K::DivideByZero, 0, "xs == null || (exists i in xs: xs[i] == stop)"}}});
}

void add_batch3_dsa(Subject& s) {
    s.methods.push_back(
        {"count_nonspace", R"(
method count_nonspace(st: str) : int {
    var n = st.len;
    var count = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (iswhitespace(st[i])) { continue; }
        count = count + 1;
    }
    return 1000 / count;
})",
         {{K::NullReference, 0, "st != null"},
          {K::DivideByZero, 0,
           "st == null || (exists i in st: !iswhitespace(st[i]))"}}});

    // First decimal digit via break: the two-sided range check makes the
    // per-element witnesses heterogeneous (template limitation).
    s.methods.push_back(
        {"first_digit", R"(
method first_digit(st: str) : int {
    if (st == null) { return -1; }
    var pos = -1;
    for (var i = 0; i < st.len; i = i + 1) {
        if (st[i] >= '0' && st[i] <= '9') { pos = i; break; }
    }
    assert(pos >= 0);
    return pos;
})",
         {{K::AssertionViolation, 0,
           "st == null || (exists i in st: st[i] >= '0' && st[i] <= '9')"}}});
}

void add_batch3_examples_puri(Subject& s) {
    s.methods.push_back(
        {"collatz_gate", R"(
method collatz_gate(x: int) : int {
    if (x % 2 == 0) { x = x / 2; }
    else { x = 3 * x + 1; }
    assert(x != 10);
    return x;
})",
         {{K::AssertionViolation, 0,
           "(x % 2 != 0 || x != 20) && (x % 2 == 0 || x != 3)"}}});

    s.methods.push_back({"double_abs", R"(
method double_abs(v: int) : int {
    var a = v;
    if (a < 0) { a = -a; }
    assert(a != 6);
    return a;
})",
                         {{K::AssertionViolation, 0, "v != 6 && v != -6"}}});
}

void add_batch3_preinference(Subject& s) {
    // Bounded-prefix condition: finitely expressible, no quantifier needed.
    s.methods.push_back(
        {"stop_at_negative", R"(
method stop_at_negative(xs: int[]) : int {
    if (xs == null) { return 0; }
    var seen = 0;
    for (var i = 0; i < xs.len; i = i + 1) {
        if (xs[i] < 0) { break; }
        seen = seen + 1;
    }
    assert(seen < 5);
    return seen;
})",
         {{K::AssertionViolation, 0,
           "xs == null || xs.len < 5 || xs[0] < 0 || xs[1] < 0 || xs[2] < 0 || "
           "xs[3] < 0 || xs[4] < 0"}}});

    s.methods.push_back(
        {"mod_ladder", R"(
method mod_ladder(u: int) : int {
    if (u % 3 == 0) {
        if (u % 5 == 0) {
            assert(u != 15);
        }
    }
    return u;
})",
         {{K::AssertionViolation, 0, "u % 3 != 0 || u % 5 != 0 || u != 15"}}});
}

void add_batch3_array_purity(Subject& s) {
    s.methods.push_back(
        {"clamp_all", R"(
method clamp_all(xs: int[], lo: int) : int {
    var n = xs.len;
    var changed = 0;
    for (var i = 0; i < n; i = i + 1) {
        if (xs[i] >= lo) { continue; }
        xs[i] = lo;
        changed = changed + 1;
    }
    assert(changed < n || n == 0);
    return changed;
})",
         {{K::NullReference, 0, "xs != null"},
          {K::AssertionViolation, 0,
           "xs == null || xs.len == 0 || (exists i in xs: xs[i] >= lo)"}}});

    // Non-linear accumulator: the violating condition spans every element,
    // so no template applies (a deliberate Table VI miss).
    s.methods.push_back(
        {"product_positive", R"(
method product_positive(xs: int[]) : int {
    if (xs == null) { return 0; }
    var prod = 1;
    for (var i = 0; i < xs.len; i = i + 1) {
        prod = prod * xs[i];
    }
    return 100 / prod;
})",
         {{K::DivideByZero, 0, "xs == null || (forall i in xs: xs[i] != 0)"}}});
}

void add_batch3_svcomp(Subject& s) {
    s.methods.push_back(
        {"saturating_count", R"(
method saturating_count(n: int) : int {
    var i = 0;
    var steps = 0;
    while (true) {
        if (i >= n) { break; }
        i = i + 1;
        steps = steps + 1;
        if (steps > 200) { break; }
    }
    assert(steps < 50);
    return steps;
})",
         {{K::AssertionViolation, 0, "n < 50"}}});

    s.methods.push_back(
        {"even_odd_counts", R"(
method even_odd_counts(a: int[]) : int {
    if (a == null) { return 0; }
    var evens = 0;
    for (var i = 0; i < a.len; i = i + 1) {
        if (a[i] % 2 == 0) { evens = evens + 1; }
    }
    return 100 / evens;
})",
         {{K::DivideByZero, 0, "a == null || (exists i in a: a[i] % 2 == 0)"}}});
}

void add_extended2(Subject& s) {
    if (s.name == "Algorithmia.Sorting") add_batch3_sorting(s);
    if (s.name == "Algorithmia.GeneralDataStr") add_batch3_general_data_structures(s);
    if (s.name == "DSA.Algorithm") add_batch3_dsa(s);
    if (s.name == "CodeContracts.ExamplesPuri") add_batch3_examples_puri(s);
    if (s.name == "CodeContracts.PreInference") add_batch3_preinference(s);
    if (s.name == "CodeContracts.ArrayPurityI") add_batch3_array_purity(s);
    if (s.name == "SVComp.SVCompCSharp") add_batch3_svcomp(s);
}

}  // namespace preinfer::eval
