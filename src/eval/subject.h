#pragma once

#include <string>
#include <vector>

#include "src/core/path_condition.h"

namespace preinfer::eval {

/// Expected ground-truth precondition for one assertion-containing location
/// of a subject method. ACLs are keyed by exception kind plus ordinal (the
/// n-th location of that kind in AST order), which is robust against source
/// reformatting.
struct GroundTruthSpec {
    core::ExceptionKind kind = core::ExceptionKind::None;
    int ordinal = 0;
    std::string pred;  ///< spec syntax, see eval/spec.h
};

struct SubjectMethod {
    std::string name;
    std::string source;  ///< MiniLang source of exactly one method
    std::vector<GroundTruthSpec> ground_truths;
};

/// One namespace row of the paper's Table V (e.g. "Algorithmia.Sorting").
struct Subject {
    std::string name;   ///< namespace-style display name
    std::string suite;  ///< owning suite for Table III / VI grouping
    std::vector<SubjectMethod> methods;

    [[nodiscard]] int total_source_lines() const;
};

/// Census used for Table III.
struct SuiteCensus {
    std::string suite;
    int namespaces = 0;  ///< stands in for the paper's #Classes
    int methods = 0;
    int lines = 0;
};

[[nodiscard]] std::vector<SuiteCensus> census(const std::vector<Subject>& subjects);

/// Wraps one MiniLang source unit (first method = method under test, later
/// methods callees) as a single-method Subject with no ground truths — the
/// entry point ad-hoc pipelines (fuzzing, tools, examples) use to feed
/// arbitrary source into run_harness.
[[nodiscard]] Subject subject_from_source(std::string name, std::string source);

}  // namespace preinfer::eval
