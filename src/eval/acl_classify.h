#pragma once

#include "src/lang/ast.h"

namespace preinfer::eval {

/// Where an assertion-containing location sits relative to loops in its
/// method — the breakdown dimension of the paper's Table V. Loop headers
/// count as inside ("overly specific predicates are those derived from
/// conditions in branches located in loops including the loop header").
enum class LoopPosition : std::uint8_t { BeforeLoop, InsideLoop, AfterLoop };

[[nodiscard]] const char* loop_position_name(LoopPosition p);

/// Classifies the AST node (statement or expression) with the given id.
[[nodiscard]] LoopPosition classify_acl(const lang::Method& method, int node_id);

}  // namespace preinfer::eval
