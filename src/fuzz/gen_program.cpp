#include "src/fuzz/gen_program.h"

#include <utility>

#include "src/lang/print.h"

namespace preinfer::fuzz {

namespace {

using lang::BinOp;
using lang::EKind;
using lang::ExprNode;
using lang::ExprPtr;
using lang::Method;
using lang::Param;
using lang::Program;
using lang::SKind;
using lang::StmtNode;
using lang::StmtPtr;
using lang::Type;
using lang::UnOp;

std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

/// All randomness flows through this: raw SplitMix64 draws reduced with %,
/// never <random> distributions, so a seed replays identically everywhere.
class Rng {
public:
    explicit Rng(std::uint64_t seed) : state_(seed) {}

    std::uint64_t next() { return splitmix64(state_); }
    int pick(int n) { return static_cast<int>(next() % static_cast<std::uint64_t>(n)); }
    bool chance(int percent) { return pick(100) < percent; }

private:
    std::uint64_t state_;
};

ExprPtr make_expr(EKind kind) {
    auto e = std::make_unique<ExprNode>();
    e->kind = kind;
    return e;
}

ExprPtr int_lit(std::int64_t v) {
    // Negative literals would print as "-v" and reparse as Unary(Neg, v),
    // breaking structural round-trips; negatives are built as explicit
    // Unary(Neg, ...) nodes instead.
    ExprPtr e = make_expr(EKind::IntLit);
    e->int_value = v;
    return e;
}

ExprPtr bool_lit(bool v) {
    ExprPtr e = make_expr(EKind::BoolLit);
    e->bool_value = v;
    return e;
}

ExprPtr var_ref(std::string name) {
    ExprPtr e = make_expr(EKind::VarRef);
    e->name = std::move(name);
    return e;
}

ExprPtr binary(BinOp op, ExprPtr lhs, ExprPtr rhs) {
    ExprPtr e = make_expr(EKind::Binary);
    e->bin = op;
    e->lhs = std::move(lhs);
    e->rhs = std::move(rhs);
    return e;
}

ExprPtr unary(UnOp op, ExprPtr operand) {
    ExprPtr e = make_expr(EKind::Unary);
    e->un = op;
    e->lhs = std::move(operand);
    return e;
}

ExprPtr call(std::string name, std::vector<ExprPtr> args) {
    ExprPtr e = make_expr(EKind::Call);
    e->name = std::move(name);
    e->args = std::move(args);
    return e;
}

StmtPtr make_stmt(SKind kind) {
    auto s = std::make_unique<StmtNode>();
    s->kind = kind;
    return s;
}

class ProgramGen {
public:
    ProgramGen(std::uint64_t seed, const GenConfig& config)
        : rng_(seed), config_(config) {}

    Program generate() {
        Program program;
        const bool with_helper = config_.allow_helper_method && rng_.chance(35);
        program.methods.push_back(gen_main(with_helper));
        if (with_helper) program.methods.push_back(gen_helper());
        return program;
    }

private:
    struct Var {
        std::string name;
        Type type;
        bool assignable;  ///< false for protected loop counters
    };

    Rng rng_;
    GenConfig config_;
    std::vector<Var> scope_;
    int next_var_ = 0;
    bool helper_available_ = false;

    std::string fresh_name() { return "v" + std::to_string(next_var_++); }

    const Var* pick_var(Type type, bool assignable_only = false) {
        std::vector<const Var*> candidates;
        for (const Var& v : scope_) {
            if (v.type == type && (!assignable_only || v.assignable))
                candidates.push_back(&v);
        }
        if (candidates.empty()) return nullptr;
        return candidates[static_cast<std::size_t>(
            rng_.pick(static_cast<int>(candidates.size())))];
    }

    /// Any in-scope indexable variable (int[] / str[] / str), or nullptr.
    const Var* pick_indexable() {
        std::vector<const Var*> candidates;
        for (const Var& v : scope_) {
            if (lang::is_indexable_type(v.type)) candidates.push_back(&v);
        }
        if (candidates.empty()) return nullptr;
        return candidates[static_cast<std::size_t>(
            rng_.pick(static_cast<int>(candidates.size())))];
    }

    const Var* pick_reference() {
        std::vector<const Var*> candidates;
        for (const Var& v : scope_) {
            if (lang::is_reference_type(v.type)) candidates.push_back(&v);
        }
        if (candidates.empty()) return nullptr;
        return candidates[static_cast<std::size_t>(
            rng_.pick(static_cast<int>(candidates.size())))];
    }

    // ---- expressions -----------------------------------------------------

    ExprPtr gen_int(int depth) {
        // Leaves when depth is spent.
        if (depth <= 0) {
            if (const Var* v = pick_var(Type::Int); v != nullptr && rng_.chance(70))
                return var_ref(v->name);
            return int_lit(rng_.pick(11));
        }
        switch (rng_.pick(10)) {
            case 0:
            case 1: return int_lit(rng_.pick(11));
            case 2:
                if (const Var* v = pick_var(Type::Int)) return var_ref(v->name);
                return int_lit(rng_.pick(11));
            case 3:  // arr.len — NullReference site on a nullable base
                if (const Var* v = pick_indexable()) {
                    ExprPtr len = make_expr(EKind::Len);
                    len->lhs = var_ref(v->name);
                    return len;
                }
                return gen_int(depth - 1);
            case 4:  // element load — NullReference + IndexOutOfRange site
                if (const Var* v = pick_indexable(); v != nullptr &&
                                                    lang::element_type(v->type) == Type::Int) {
                    ExprPtr idx = make_expr(EKind::Index);
                    idx->lhs = var_ref(v->name);
                    idx->rhs = gen_int(depth - 1);
                    return idx;
                }
                return gen_int(depth - 1);
            case 5: {  // division / modulus — DivideByZero site
                const BinOp op = rng_.chance(50) ? BinOp::Div : BinOp::Mod;
                return binary(op, gen_int(depth - 1), gen_int(depth - 1));
            }
            case 6:
                return unary(UnOp::Neg, gen_int(depth - 1));
            case 7:
                if (helper_available_)
                    return call("h0", two_args(depth - 1));
                [[fallthrough]];
            default: {
                static constexpr BinOp kArith[] = {BinOp::Add, BinOp::Add, BinOp::Sub,
                                                   BinOp::Mul};
                const BinOp op = kArith[rng_.pick(4)];
                return binary(op, gen_int(depth - 1), gen_int(depth - 1));
            }
        }
    }

    std::vector<ExprPtr> two_args(int depth) {
        std::vector<ExprPtr> args;
        args.push_back(gen_int(depth));
        args.push_back(gen_int(depth));
        return args;
    }

    ExprPtr gen_bool(int depth) {
        if (depth <= 0) {
            if (const Var* v = pick_var(Type::Bool); v != nullptr && rng_.chance(60))
                return var_ref(v->name);
            return gen_compare(0);
        }
        switch (rng_.pick(10)) {
            case 0:
                if (const Var* v = pick_var(Type::Bool)) return var_ref(v->name);
                return gen_compare(depth - 1);
            case 1: {  // null test keeps reference-typed inputs relevant
                if (const Var* v = pick_reference()) {
                    const BinOp op = rng_.chance(50) ? BinOp::Eq : BinOp::Ne;
                    return binary(op, var_ref(v->name), make_expr(EKind::NullLit));
                }
                return gen_compare(depth - 1);
            }
            case 2: {
                const BinOp op = rng_.chance(50) ? BinOp::And : BinOp::Or;
                return binary(op, gen_bool(depth - 1), gen_bool(depth - 1));
            }
            case 3:
                return unary(UnOp::Not, gen_bool(depth - 1));
            case 4: {
                std::vector<ExprPtr> args;
                args.push_back(gen_int(depth - 1));
                return call("iswhitespace", std::move(args));
            }
            case 5:
                return bool_lit(rng_.chance(65));
            default:
                return gen_compare(depth - 1);
        }
    }

    ExprPtr gen_compare(int depth) {
        static constexpr BinOp kCmp[] = {BinOp::Eq, BinOp::Ne, BinOp::Lt,
                                         BinOp::Le, BinOp::Gt, BinOp::Ge};
        return binary(kCmp[rng_.pick(6)], gen_int(depth), gen_int(depth));
    }

    // ---- statements ------------------------------------------------------

    void gen_block(std::vector<StmtPtr>& out, int depth, bool in_loop) {
        const std::size_t scope_mark = scope_.size();
        const int count = 1 + rng_.pick(config_.max_block_stmts);
        for (int i = 0; i < count; ++i) gen_stmt(out, depth, in_loop);
        scope_.resize(scope_mark);  // block-scoped declarations expire
    }

    void gen_stmt(std::vector<StmtPtr>& out, int depth, bool in_loop) {
        switch (rng_.pick(12)) {
            case 0:
            case 1:
            case 2: out.push_back(gen_var_decl()); return;
            case 3:
            case 4: {
                if (StmtPtr s = gen_assign()) {
                    out.push_back(std::move(s));
                    return;
                }
                out.push_back(gen_var_decl());
                return;
            }
            case 5:
            case 6: out.push_back(gen_assert()); return;
            case 7:
            case 8:
                if (depth > 0) {
                    out.push_back(gen_if(depth, in_loop));
                    return;
                }
                out.push_back(gen_assert());
                return;
            case 9:
                if (depth > 0 && config_.allow_loops) {
                    gen_counted_loop(out, depth);
                    return;
                }
                out.push_back(gen_var_decl());
                return;
            case 10:
                if (in_loop && rng_.chance(40)) {
                    out.push_back(make_stmt(SKind::Break));
                    return;
                }
                out.push_back(gen_assert());
                return;
            default: out.push_back(gen_var_decl()); return;
        }
    }

    StmtPtr gen_var_decl() {
        StmtPtr s = make_stmt(SKind::VarDecl);
        s->name = fresh_name();
        Type type = Type::Int;
        const int roll = rng_.pick(10);
        if (roll >= 8) {
            type = Type::Bool;
            s->expr = gen_bool(config_.max_expr_depth);
        } else if (roll == 7) {
            type = Type::IntArr;
            std::vector<ExprPtr> args;
            args.push_back(gen_int(1));
            s->expr = call("newintarray", std::move(args));
        } else {
            s->expr = gen_int(config_.max_expr_depth);
        }
        scope_.push_back({s->name, type, /*assignable=*/true});
        return s;
    }

    /// Scalar reassignment or an int[] element store (Null + bounds ACLs);
    /// returns nullptr when no assignable target is in scope.
    StmtPtr gen_assign() {
        if (rng_.chance(35)) {
            if (const Var* arr = pick_var(Type::IntArr)) {
                StmtPtr s = make_stmt(SKind::Assign);
                s->name = arr->name;
                s->index = gen_int(1);
                s->expr = gen_int(config_.max_expr_depth - 1);
                return s;
            }
        }
        const Type t = rng_.chance(80) ? Type::Int : Type::Bool;
        const Var* target = pick_var(t, /*assignable_only=*/true);
        if (target == nullptr) return nullptr;
        StmtPtr s = make_stmt(SKind::Assign);
        s->name = target->name;
        s->expr = t == Type::Int ? gen_int(config_.max_expr_depth)
                                 : gen_bool(config_.max_expr_depth);
        return s;
    }

    StmtPtr gen_assert() {
        StmtPtr s = make_stmt(SKind::Assert);
        s->expr = gen_bool(config_.max_expr_depth);
        return s;
    }

    StmtPtr gen_if(int depth, bool in_loop) {
        StmtPtr s = make_stmt(SKind::If);
        s->expr = gen_bool(config_.max_expr_depth);
        gen_block(s->body, depth - 1, in_loop);
        if (rng_.chance(40)) gen_block(s->else_body, depth - 1, in_loop);
        return s;
    }

    /// Emits `var c = 0; while (c < bound) { ...; c = c + 1; }` with a small
    /// literal (or collection-length) bound and a counter no other statement
    /// may assign — every generated loop terminates unless a nested `break`
    /// cuts it short, which only shortens it. The increment is the last body
    /// statement and the generator never emits `continue`, so it cannot be
    /// skipped.
    void gen_counted_loop(std::vector<StmtPtr>& out, int depth) {
        StmtPtr init = make_stmt(SKind::VarDecl);
        init->name = fresh_name();
        init->expr = int_lit(0);
        const std::string counter = init->name;
        scope_.push_back({counter, Type::Int, /*assignable=*/false});
        out.push_back(std::move(init));

        ExprPtr bound;
        if (const Var* v = pick_indexable(); v != nullptr && rng_.chance(30)) {
            bound = make_expr(EKind::Len);  // iterate a collection: len ≤ 64
            bound->lhs = var_ref(v->name);
        } else {
            bound = int_lit(1 + rng_.pick(config_.max_loop_literal));
        }

        StmtPtr loop = make_stmt(SKind::While);
        loop->expr = binary(BinOp::Lt, var_ref(counter), std::move(bound));
        gen_block(loop->body, depth - 1, /*in_loop=*/true);
        StmtPtr inc = make_stmt(SKind::Assign);
        inc->name = counter;
        inc->expr = binary(BinOp::Add, var_ref(counter), int_lit(1));
        loop->body.push_back(std::move(inc));
        out.push_back(std::move(loop));
    }

    // ---- methods ---------------------------------------------------------

    Method gen_main(bool with_helper) {
        Method m;
        m.name = "m0";
        m.ret = rng_.chance(70) ? Type::Int : Type::Void;
        const int span = config_.max_params - config_.min_params + 1;
        const int num_params = config_.min_params + (span > 0 ? rng_.pick(span) : 0);
        for (int i = 0; i < num_params; ++i) {
            static constexpr Type kParamTypes[] = {Type::Int,    Type::Int, Type::Int,
                                                   Type::IntArr, Type::IntArr,
                                                   Type::Str,    Type::Bool};
            const Type t = kParamTypes[rng_.pick(7)];
            const std::string name = "p" + std::to_string(i);
            m.params.push_back({name, t});
            scope_.push_back({name, t, /*assignable=*/true});
        }
        helper_available_ = with_helper;
        gen_block(m.body, config_.max_stmt_depth, /*in_loop=*/false);
        if (!has_acl_site(m.body)) m.body.push_back(gen_assert());
        if (m.ret == Type::Int) {
            StmtPtr ret = make_stmt(SKind::Return);
            ret->expr = gen_int(config_.max_expr_depth);
            m.body.push_back(std::move(ret));
        }
        scope_.clear();
        helper_available_ = false;
        return m;
    }

    /// A small int-valued callee, often carrying its own DivideByZero site,
    /// so interprocedural assertion locations show up in main's analysis.
    Method gen_helper() {
        Method m;
        m.name = "h0";
        m.params = {{"a", Type::Int}, {"b", Type::Int}};
        m.ret = Type::Int;
        scope_.push_back({"a", Type::Int, true});
        scope_.push_back({"b", Type::Int, true});
        if (rng_.chance(50)) {
            StmtPtr guard = make_stmt(SKind::If);
            guard->expr = gen_compare(1);
            StmtPtr early = make_stmt(SKind::Return);
            early->expr = gen_int(1);
            guard->body.push_back(std::move(early));
            m.body.push_back(std::move(guard));
        }
        StmtPtr ret = make_stmt(SKind::Return);
        if (rng_.chance(60)) {
            const BinOp op = rng_.chance(50) ? BinOp::Div : BinOp::Mod;
            ret->expr = binary(op, var_ref("a"), var_ref("b"));
        } else {
            ret->expr = binary(BinOp::Add, gen_int(1), gen_int(1));
        }
        m.body.push_back(std::move(ret));
        scope_.clear();
        return m;
    }

    /// True when the statement list contains an implicit or explicit ACL
    /// candidate: assert, division/modulus, element access, or .len.
    static bool has_acl_site(const std::vector<StmtPtr>& body) {
        bool found = false;
        lang::for_each_stmt(body, [&](const StmtNode& s) {
            if (s.kind == SKind::Assert) found = true;
            if (s.kind == SKind::Assign && s.index) found = true;
        });
        if (found) return true;
        lang::for_each_expr_in(body, [&](const ExprNode& e) {
            if (e.kind == EKind::Index || e.kind == EKind::Len) found = true;
            if (e.kind == EKind::Binary && (e.bin == BinOp::Div || e.bin == BinOp::Mod))
                found = true;
        });
        return found;
    }
};

}  // namespace

Program generate_program(std::uint64_t seed, const GenConfig& config) {
    return ProgramGen(seed, config).generate();
}

std::string generate_source(std::uint64_t seed, const GenConfig& config) {
    return lang::to_string(generate_program(seed, config));
}

std::uint64_t derive_seed(std::uint64_t base, std::uint64_t iteration) {
    std::uint64_t state = base ^ (iteration * 0x2545f4914f6cdd1dULL + 0x9e3779b97f4a7c15ULL);
    return splitmix64(state);
}

}  // namespace preinfer::fuzz
