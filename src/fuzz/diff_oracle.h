#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "src/fuzz/gen_program.h"

namespace preinfer::fuzz {

/// Fault-injection modes (docs/FUZZING.md has the full matrix). Every mode
/// must degrade gracefully: the pipeline completes, reports whatever the
/// starved budgets allowed, and every soundness theorem still holds on the
/// evidence that was gathered.
enum class FaultMode : std::uint8_t {
    None,             ///< healthy run; determinism battery applies
    SolverStarvation, ///< solver answers Unknown after a mid-run call budget
    SolverBlackout,   ///< every solver query answers Unknown from the start
    StepExhaustion,   ///< interpreter step budget cut to a sliver
    PoolPressure,     ///< exploration halts once the expression pool grows
};

inline constexpr FaultMode kFaultModes[] = {
    FaultMode::None, FaultMode::SolverStarvation, FaultMode::SolverBlackout,
    FaultMode::StepExhaustion, FaultMode::PoolPressure,
};

[[nodiscard]] const char* fault_mode_name(FaultMode mode);

struct OracleConfig {
    GenConfig gen{};
    FaultMode fault = FaultMode::None;

    /// Budgets of the inner pipeline — deliberately smaller than the
    /// harness defaults so one iteration stays in the tens of milliseconds.
    int max_tests = 48;
    int max_solver_calls = 768;
    /// Failing path conditions per ACL whose solver models are concretely
    /// replayed (check `model-replay-divergence`).
    int replay_models_per_acl = 3;

    bool check_roundtrip = true;
    /// Cross-check the IL and AST execution backends: re-run the whole
    /// pipeline under the other backend (fingerprints must match) and replay
    /// every suite input under the other backend against the primary pool
    /// (outcome, steps, coverage and path condition must be identical,
    /// predicate for predicate). Unlike the determinism battery this applies
    /// to fault-injected runs too — backend equivalence is a semantics
    /// theorem (docs/IL.md), not a budget property.
    bool check_backend = true;
    /// Re-run the whole pipeline with the solver's interval pre-pass
    /// disabled (SolverConfig::abstract_prepass) and require identical
    /// fingerprints. Like backend equivalence this applies to fault-injected
    /// runs too: the pre-pass advertises bit-identical statuses, models and
    /// budgets (DESIGN.md §3g), which is a semantics theorem, not a budget
    /// property.
    bool check_prepass = true;
    /// Build a persistent solve-cache tier (DESIGN.md §3h) from a recording
    /// rerun, then replay the pipeline against it and require identical
    /// fingerprints — both legs: recording must be passive, and disk hits
    /// must be bit-for-bit replays of the solves they replace. Applies to
    /// fault-injected runs too: the tier's config fingerprint covers the
    /// solver-level fault seams, so a faulted run must either replay its
    /// own faulted recording exactly or (starvation's explorer-level gate)
    /// consult the tier only where a real solve would have run.
    bool check_disk_cache = true;
    /// Run the determinism battery (rerun, incremental off, unsat
    /// subsumption off, uncached soundness run). Only applies when
    /// fault == None: injected faults are allowed to change trajectories.
    bool check_determinism = true;
    /// Cross-check eval::run_harness jobs=1 vs jobs=3 on a 3-method subject
    /// (result rows and merged trace must be byte-identical). Noticeably
    /// heavier than the other checks; the driver samples it.
    bool check_jobs_equivalence = false;
};

/// One failed oracle check. `check` is a stable machine-readable id (the
/// set is enumerated in docs/FUZZING.md); `detail` is human diagnosis.
struct Violation {
    std::string check;
    std::string detail;
};

/// Structured status of one fuzz iteration. The oracle never throws and
/// never intentionally aborts: pipeline exceptions are themselves reported
/// as `unhandled-exception` violations.
struct OracleReport {
    std::uint64_t seed = 0;
    FaultMode fault = FaultMode::None;
    std::string source;

    int tests = 0;
    int failing_tests = 0;
    int acls = 0;
    int replayed_models = 0;  ///< solver models executed concretely
    int skipped_replays = 0;  ///< Sat models whose reconstruction was inexact

    std::vector<Violation> violations;

    [[nodiscard]] bool ok() const { return violations.empty(); }
};

/// Generates the program for `seed` and runs the full differential oracle
/// on it: per-test path-condition self-consistency, per-ACL soundness of
/// the inferred α/ψ, pruned-vs-unpruned reachability cross-checks, solver
/// model replay, and (fault == None) the determinism battery.
[[nodiscard]] OracleReport check_program(std::uint64_t seed,
                                         const OracleConfig& config = {});

/// Same oracle over explicit source text (used by --minimize replays and
/// regression tests distilled from surviving seeds). `seed` only labels the
/// report.
[[nodiscard]] OracleReport check_source(const std::string& source,
                                        std::uint64_t seed,
                                        const OracleConfig& config = {});

/// Greedy structural shrinker: repeatedly deletes single statements and
/// hoists branch/loop bodies while `still_failing(candidate_source)` stays
/// true, until no single transformation preserves the failure. The
/// predicate sees printed MiniLang source; candidates that no longer parse
/// or type-check simply make the predicate return false. Returns the
/// smallest failing source found (the input itself if nothing shrinks).
[[nodiscard]] std::string minimize_source(
    const std::string& source,
    const std::function<bool(const std::string&)>& still_failing);

}  // namespace preinfer::fuzz
