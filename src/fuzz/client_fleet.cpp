#include "src/fuzz/client_fleet.h"

#include <sys/socket.h>
#include <sys/time.h>
#include <unistd.h>

#include <atomic>
#include <cerrno>
#include <mutex>
#include <optional>
#include <thread>
#include <utility>

#include "src/api/serve.h"
#include "src/fuzz/gen_program.h"
#include "src/support/trace.h"

namespace preinfer::fuzz {

namespace {

/// One request line the fleet will send, with the response contract it
/// must observe back.
struct Planned {
    std::string line;  ///< newline-terminated wire bytes
    std::string id;    ///< id the response must echo ("" for malformed lines)
    enum class Kind {
        Normal,     ///< well-formed; expect ok:true or "overloaded"
        BadBudget,  ///< overflowing max_tests; expect the range error
        DupKey,     ///< repeated field; expect the duplicate error
        Malformed,  ///< not JSON; expect ok:false with id ""
    } kind = Kind::Normal;
};

std::string escape(const std::string& s) {
    std::string out;
    support::json_escape_to(out, s);
    return out;
}

/// The request mix for one (connection, request) slot. Generated programs
/// carry the inference load; every sixth slot stresses a wire error path,
/// and the healthy slots cycle validation, tight deadlines and — when
/// enabled — the injected fault seams (solver-unknown, pool-limit).
Planned plan_request(const FleetConfig& config, int connection, int index) {
    Planned planned;
    planned.id = "c" + std::to_string(connection) + "-r" + std::to_string(index);
    const std::uint64_t seed = derive_seed(
        config.seed, static_cast<std::uint64_t>(connection) * 131071u +
                         static_cast<std::uint64_t>(index));
    GenConfig gen;
    gen.max_block_stmts = 3;
    gen.max_stmt_depth = 2;
    const std::string source = generate_source(seed, gen);

    switch (index % 6) {
        case 2:
            planned.kind = Planned::Kind::BadBudget;
            planned.line = "{\"id\":\"" + planned.id +
                           "\",\"max_tests\":99999999999,\"source\":\"" +
                           escape(source) + "\"}\n";
            return planned;
        case 4:
            if (index % 12 == 4) {
                planned.kind = Planned::Kind::DupKey;
                planned.line = "{\"id\":\"" + planned.id +
                               "\",\"source\":\"x\",\"source\":\"y\"}\n";
            } else {
                planned.kind = Planned::Kind::Malformed;
                planned.id = "";
                planned.line = "this is not a request\n";
            }
            return planned;
        default: break;
    }

    std::string extras = "\"max_tests\":24,\"max_solver_calls\":384";
    if (index % 6 == 3) extras += ",\"validate\":true";
    if (index % 6 == 5) extras += ",\"deadline_ms\":2";  // exercises the clamp
    if (index % 6 == 1 && config.inject_faults) {
        extras += std::string(",\"fault\":\"") +
                  fault_mode_name(kFaultModes[1 + (index % 4)]) + "\"";
    }
    planned.line = "{\"id\":\"" + planned.id + "\"," + extras + ",\"source\":\"" +
                   escape(source) + "\"}\n";
    return planned;
}

/// Blocking line reader over the client socket with a receive timeout, so
/// a server that drops a response fails the run instead of hanging it.
class ClientReader {
public:
    explicit ClientReader(int fd) : fd_(fd) {
        timeval timeout{};
        timeout.tv_sec = 60;
        ::setsockopt(fd_, SOL_SOCKET, SO_RCVTIMEO, &timeout, sizeof(timeout));
    }

    /// False on EOF, error or timeout.
    bool next(std::string& line) {
        while (true) {
            const std::size_t nl = buffer_.find('\n', pos_);
            if (nl != std::string::npos) {
                line.assign(buffer_, pos_, nl - pos_);
                pos_ = nl + 1;
                return true;
            }
            char chunk[16384];
            const ssize_t n = ::recv(fd_, chunk, sizeof chunk, 0);
            if (n > 0) {
                buffer_.append(chunk, static_cast<std::size_t>(n));
                continue;
            }
            if (n < 0 && errno == EINTR) continue;
            return false;
        }
    }

private:
    int fd_;
    std::string buffer_;
    std::size_t pos_ = 0;
};

bool contains(const std::string& haystack, const char* needle) {
    return haystack.find(needle) != std::string::npos;
}

struct ClientTally {
    std::int64_t ok = 0;
    std::int64_t failed = 0;
    std::int64_t shed = 0;
    std::vector<Violation> violations;

    void violate(std::string check, std::string detail) {
        violations.push_back({std::move(check), std::move(detail)});
    }
};

/// One fleet client: connect, send every planned line in one write (so the
/// session sees them as one batch — the admission-control worst case), then
/// read exactly one response per request and check the contract.
ClientTally run_client(const FleetConfig& config, const std::string& address,
                       int connection) {
    ClientTally tally;
    const std::string tag = "connection " + std::to_string(connection);

    std::vector<Planned> plan;
    std::string wire;
    for (int r = 0; r < config.requests_per_connection; ++r) {
        plan.push_back(plan_request(config, connection, r));
        wire += plan.back().line;
    }

    std::string error;
    const int fd = api::connect_client(address, &error);
    if (fd < 0) {
        tally.violate("fleet-connect", tag + ": " + error);
        return tally;
    }
    std::size_t sent = 0;
    while (sent < wire.size()) {
        const ssize_t n =
            ::send(fd, wire.data() + sent, wire.size() - sent, MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR) continue;
            tally.violate("fleet-send", tag + ": send failed after " +
                                            std::to_string(sent) + " bytes");
            ::close(fd);
            return tally;
        }
        sent += static_cast<std::size_t>(n);
    }

    ClientReader reader(fd);
    std::string line;
    for (std::size_t i = 0; i < plan.size(); ++i) {
        const Planned& expected = plan[i];
        const std::string slot = tag + " response " + std::to_string(i);
        if (!reader.next(line)) {
            tally.violate("fleet-missing-response",
                          slot + ": connection ended after " + std::to_string(i) +
                              " of " + std::to_string(plan.size()) + " responses");
            break;
        }
        // Per-connection in-order correlation: the i-th response must echo
        // the i-th request's id (or "" when the line was unparseable).
        const std::string want_prefix = "{\"id\":\"" + expected.id + "\",";
        if (line.rfind(want_prefix, 0) != 0) {
            tally.violate("fleet-order",
                          slot + ": expected id \"" + expected.id + "\", got: " +
                              line.substr(0, 80));
            continue;
        }
        const bool is_ok = contains(line, "\"ok\":true");
        const bool is_err = contains(line, "\"ok\":false") && contains(line, "\"error\":\"");
        if (!is_ok && !is_err) {
            tally.violate("fleet-malformed-response", slot + ": " + line.substr(0, 120));
            continue;
        }
        const bool is_shed = is_err && contains(line, "\"error\":\"overloaded\"");
        if (is_ok) ++tally.ok;
        if (is_err) ++tally.failed;
        if (is_shed) ++tally.shed;

        switch (expected.kind) {
            case Planned::Kind::Normal:
                // Healthy, deadline-capped and fault-injected requests must
                // all degrade gracefully: an engine answer or a shed, never
                // a schema error or a dropped line.
                if (!is_ok && !is_shed) {
                    tally.violate("fleet-unexpected-failure",
                                  slot + ": " + line.substr(0, 160));
                }
                break;
            case Planned::Kind::BadBudget:
                if (!contains(line, "out of range")) {
                    tally.violate("fleet-error-contract",
                                  slot + ": overflowing budget not rejected: " +
                                      line.substr(0, 120));
                }
                break;
            case Planned::Kind::DupKey:
                if (!contains(line, "duplicate field")) {
                    tally.violate("fleet-error-contract",
                                  slot + ": duplicate key not rejected: " +
                                      line.substr(0, 120));
                }
                break;
            case Planned::Kind::Malformed:
                if (is_ok) {
                    tally.violate("fleet-error-contract",
                                  slot + ": malformed line answered ok:true");
                }
                break;
        }
    }
    ::close(fd);
    return tally;
}

}  // namespace

FleetReport run_client_fleet(const FleetConfig& config) {
    FleetReport report;
    const int connections = config.connections > 0 ? config.connections : 1;
    const int per_connection = config.requests_per_connection > 0
                                   ? config.requests_per_connection
                                   : 1;
    FleetConfig effective = config;
    effective.connections = connections;
    effective.requests_per_connection = per_connection;

    std::optional<api::Server> server;
    std::string address = config.connect;
    if (address.empty()) {
        api::ServerOptions options;
        options.listen = "/tmp/preinfer-fleet-" + std::to_string(::getpid()) +
                         "-" + std::to_string(config.seed) + ".sock";
        options.serve.jobs = config.jobs;
        // One write per client == one batch per session: batch_max must
        // admit the whole burst so admission control (not framing) decides.
        options.serve.batch_max = per_connection;
        options.serve.allow_fault = true;
        options.max_pending = config.max_pending > 0 ? config.max_pending : 256;
        options.max_sessions = connections + 4;
        server.emplace(options);
        std::string error;
        if (!server->start(&error)) {
            report.violations.push_back({"fleet-server-start", error});
            return report;
        }
        address = server->address();
    }

    std::vector<ClientTally> tallies(static_cast<std::size_t>(connections));
    {
        std::vector<std::thread> clients;
        clients.reserve(static_cast<std::size_t>(connections));
        for (int c = 0; c < connections; ++c) {
            clients.emplace_back([&effective, &address, &tallies, c] {
                tallies[static_cast<std::size_t>(c)] =
                    run_client(effective, address, c);
            });
        }
        for (std::thread& t : clients) t.join();
    }

    report.connections = connections;
    report.requests =
        static_cast<std::int64_t>(connections) * per_connection;
    for (ClientTally& tally : tallies) {
        report.ok += tally.ok;
        report.failed += tally.failed;
        report.shed += tally.shed;
        for (Violation& v : tally.violations) {
            report.violations.push_back(std::move(v));
        }
    }

    if (server) {
        const api::ServerStats stats = server->stop();
        if (stats.requests != report.requests) {
            report.violations.push_back(
                {"fleet-stats-mismatch",
                 "server answered " + std::to_string(stats.requests) +
                     " requests, fleet sent " + std::to_string(report.requests)});
        }
        if (stats.shed != report.shed) {
            report.violations.push_back(
                {"fleet-stats-mismatch",
                 "server counted " + std::to_string(stats.shed) +
                     " shed responses, clients observed " +
                     std::to_string(report.shed)});
        }
        if (stats.connections != connections) {
            report.violations.push_back(
                {"fleet-stats-mismatch",
                 "server served " + std::to_string(stats.connections) +
                     " connections, fleet opened " + std::to_string(connections)});
        }
    }
    if (config.expect_shed && report.shed == 0) {
        report.violations.push_back(
            {"fleet-no-shed",
         "expected load-shedding under max_pending=" +
             std::to_string(config.max_pending) + " but saw no overloaded response"});
    }
    return report;
}

}  // namespace preinfer::fuzz
