#include "src/fuzz/diff_oracle.h"

#include <memory>
#include <stdexcept>
#include <string_view>
#include <utility>

#include "src/api/engine.h"

#include "src/core/pred_eval.h"
#include "src/core/preinfer.h"
#include "src/core/pruning.h"
#include "src/eval/harness.h"
#include "src/eval/subject.h"
#include "src/exec/executor.h"
#include "src/exec/input.h"
#include "src/gen/explorer.h"
#include "src/gen/oracle.h"
#include "src/solver/disk_cache.h"
#include "src/gen/reconstruct.h"
#include "src/gen/testsuite.h"
#include "src/lang/blocks.h"
#include "src/lang/parser.h"
#include "src/lang/print.h"
#include "src/lang/type_check.h"
#include "src/solver/atom_index.h"
#include "src/solver/solve_cache.h"
#include "src/sym/eval.h"

namespace preinfer::fuzz {

namespace {

void add_violation(OracleReport& report, std::string check, std::string detail) {
    report.violations.push_back({std::move(check), std::move(detail)});
}

/// FaultMode is the fuzz-facing name for the engine's fault seams; the
/// engine owns the one translation into explorer config (the copy that
/// used to live here is gone).
api::Fault to_api_fault(FaultMode mode) {
    static_assert(static_cast<int>(FaultMode::None) ==
                  static_cast<int>(api::Fault::None));
    static_assert(static_cast<int>(FaultMode::SolverStarvation) ==
                  static_cast<int>(api::Fault::SolverStarvation));
    static_assert(static_cast<int>(FaultMode::SolverBlackout) ==
                  static_cast<int>(api::Fault::SolverBlackout));
    static_assert(static_cast<int>(FaultMode::StepExhaustion) ==
                  static_cast<int>(api::Fault::StepExhaustion));
    static_assert(static_cast<int>(FaultMode::PoolPressure) ==
                  static_cast<int>(api::Fault::PoolPressure));
    return static_cast<api::Fault>(mode);
}

gen::ExplorerConfig make_explorer_config(const OracleConfig& cfg) {
    return api::make_explorer_config(
        {.max_tests = cfg.max_tests, .max_solver_calls = cfg.max_solver_calls},
        to_api_fault(cfg.fault));
}

/// One full inference pipeline over one source unit, as an engine request:
/// the returned artifacts keep everything the checks need alive (the pool
/// owns every expression the suite and the inference results reference).
/// Mirrors eval::run_method's inference half — no baselines, no validation
/// suite. `cache_options == nullptr` runs without a solve cache.
std::shared_ptr<api::PipelineArtifacts> run_pipeline(
    api::InferenceEngine& engine, const std::string& source,
    const gen::ExplorerConfig& config,
    const solver::SolveCache::Options* cache_options,
    solver::DiskCacheBuilder* recorder = nullptr,
    std::shared_ptr<const solver::DiskCache> disk = nullptr) {
    api::InferRequest request;
    request.subject = "fuzz";
    request.source = source;
    request.keep_artifacts = true;
    request.config.explore = config;
    request.config.validate = false;
    request.config.run_fixit = false;
    request.config.run_dysy = false;
    request.config.preinfer.pruning.mode = core::PruningMode::SolverAssisted;
    request.config.use_cache = cache_options != nullptr;
    if (cache_options != nullptr) request.config.cache = *cache_options;
    request.config.disk_recorder = recorder;
    request.config.disk_cache = std::move(disk);

    api::InferResponse response = engine.infer(request);
    // Frontend rejections surface as exceptions so the minimizer's
    // "unhandled-exception" classification keeps working unchanged.
    if (!response.ok) throw std::runtime_error(response.error);
    return std::move(response.artifacts);
}

bool eval_true(const sym::Expr* e, const sym::EvalEnv& env) {
    const sym::EvalValue v = sym::eval(e, env);
    return v.tag == sym::EvalValue::Tag::Bool && v.i != 0;
}

/// Index of the first conjunct not concretely true under `env`; -1 when the
/// whole path condition holds.
int first_false_conjunct(const core::PathCondition& pc, const sym::EvalEnv& env) {
    for (std::size_t i = 0; i < pc.preds.size(); ++i) {
        if (!eval_true(pc.preds[i].expr, env)) return static_cast<int>(i);
    }
    return -1;
}

std::string acl_label(core::AclId acl) {
    return std::string(core::exception_kind_name(acl.kind)) + "@" +
           std::to_string(acl.node_id);
}

/// Canonical text of everything a pipeline run decided: the executed suite
/// (inputs, outcomes, path signatures) and the per-ACL inference results.
/// Deliberately excludes solver-outcome tallies and cache counters — the
/// semantic cache answers Unsat where a budgeted search answers Unknown, so
/// those counts legitimately differ between equivalent runs.
std::string fingerprint(const api::PipelineArtifacts& run) {
    const lang::Method& method = run.method();
    const std::vector<std::string> names = method.param_names();
    std::string out;
    for (const gen::Test& t : run.suite.tests) {
        out += t.input.to_string(method);
        out += " -> ";
        out += t.result.outcome.to_string();
        out += " pc:";
        out += std::to_string(t.result.pc.signature());
        out += '\n';
    }
    out += "exec " + std::to_string(run.explore_stats.executions) + " dup_in " +
           std::to_string(run.explore_stats.duplicate_inputs) + " dup_path " +
           std::to_string(run.explore_stats.duplicate_paths) + '\n';
    for (const api::PipelineArtifacts::AclInference& o : run.inferences) {
        out += acl_label(o.acl);
        out += " psi: ";
        out += core::to_string(o.result.precondition, names);
        out += " alpha: ";
        out += core::to_string(o.result.alpha, names);
        out += " paths " + std::to_string(o.result.failing_paths);
        out += " gen " + std::to_string(o.result.generalized_paths);
        out += " pruned " + std::to_string(o.result.pruning.pruned);
        out += '\n';
    }
    return out;
}

/// The theorem-grade checks. Every check here must hold for ANY run —
/// healthy or fault-injected — because each asserts a property of evidence
/// the pipeline actually gathered, never of evidence a budget withheld.
void check_soundness(const api::PipelineArtifacts& run, const OracleConfig& cfg,
                     OracleReport& report) {
    const lang::Method& method = run.method();

    // (1) Path-condition self-consistency: predicates are recorded in taken
    // polarity over entry-state symbols, so every conjunct of a test's own
    // path condition concretely holds on that test's input.
    for (const gen::Test& t : run.suite.tests) {
        const exec::InputEvalEnv env(method, t.input);
        const int bad = first_false_conjunct(t.result.pc, env);
        if (bad >= 0) {
            add_violation(report, "pc-self-consistency",
                          "test " + std::to_string(t.id) + " conjunct #" +
                              std::to_string(bad) + " is false on its own input " +
                              t.input.to_string(method));
        }
    }

    solver::Solver check_solver(*run.pool, run.explore_config.solver_config);
    for (const api::PipelineArtifacts::AclInference& o : run.inferences) {
        const gen::AclView view = gen::view_for(run.suite, o.acl);
        if (!o.result.inferred) {
            if (!view.failing.empty()) {
                add_violation(report, "not-inferred",
                              acl_label(o.acl) + " has " +
                                  std::to_string(view.failing.size()) +
                                  " failing tests but inference declined");
            }
            continue;
        }

        // (2) α covers every observed unsafe state, and ψ = ¬α admits none
        // of them (Theorem 1's direction checkable from the evidence).
        for (const gen::Test* t : view.failing) {
            const exec::InputEvalEnv env(method, t->input);
            if (!core::eval_pred(o.result.alpha, env)) {
                add_violation(report, "alpha-misses-failing",
                              acl_label(o.acl) + " alpha is not true on failing input " +
                                  t->input.to_string(method));
            }
            if (core::eval_pred_3v(o.result.precondition, env) == core::Tri::True) {
                add_violation(report, "psi-admits-failing",
                              acl_label(o.acl) + " psi is true on failing input " +
                                  t->input.to_string(method));
            }
        }

        // (3) Path determinism, passing side: recorded path conditions hold
        // exactly the input-dependent branch decisions, so an input that
        // satisfies a failing test's FULL path condition must follow that
        // path and abort. A passing test satisfying one is a contradiction.
        for (const gen::Test* f : view.failing) {
            for (const gen::Test* p : view.passing) {
                const exec::InputEvalEnv env(method, p->input);
                if (first_false_conjunct(f->result.pc, env) == -1) {
                    add_violation(
                        report, "path-determinism-passing",
                        acl_label(o.acl) + " passing input " +
                            p->input.to_string(method) +
                            " satisfies the full failing path condition of test " +
                            std::to_string(f->id));
                }
            }
        }

        // (4) Solver agreement + model replay: each failing path condition
        // has its own input as concrete witness, so the solver may answer
        // Sat or Unknown but never Unsat. Sat models are reconstructed and,
        // when the reconstruction concretely satisfies the full path
        // condition, executed — the run must abort at the same ACL.
        int replayed = 0;
        for (const gen::Test* f : view.failing) {
            if (replayed >= cfg.replay_models_per_acl) break;
            std::vector<const sym::Expr*> conjuncts;
            conjuncts.reserve(f->result.pc.preds.size());
            for (const core::PathPredicate& pp : f->result.pc.preds) {
                conjuncts.push_back(pp.expr);
            }
            const solver::SolveResult res = check_solver.solve(conjuncts);
            if (res.status == solver::SolveStatus::Unsat) {
                add_violation(report, "full-pc-unsat",
                              acl_label(o.acl) + " solver claims the witnessed path of test " +
                                  std::to_string(f->id) + " is unsatisfiable");
                continue;
            }
            if (res.status != solver::SolveStatus::Sat) continue;
            const exec::Input replay_input = gen::reconstruct_input(
                *run.pool, method, res.model, &f->input,
                run.explore_config.solver_config.len_max);
            const exec::InputEvalEnv renv(method, replay_input);
            if (first_false_conjunct(f->result.pc, renv) != -1) {
                // Reconstruction defaults filled a term the model left
                // unconstrained in a way that flips a conjunct; the replay
                // theorem only covers exact reconstructions.
                ++report.skipped_replays;
                continue;
            }
            const std::unique_ptr<exec::Executor> interp =
                exec::make_executor(run.explore_config.backend, *run.pool, method,
                                    run.explore_config.exec_limits, &run.program);
            const exec::RunResult rr = interp->run(replay_input);
            ++replayed;
            ++report.replayed_models;
            if (rr.outcome.tag != exec::Outcome::Tag::Exception ||
                !(rr.outcome.acl == o.acl)) {
                add_violation(report, "model-replay-divergence",
                              acl_label(o.acl) + " model input " +
                                  replay_input.to_string(method) +
                                  " satisfies the failing path condition of test " +
                                  std::to_string(f->id) + " but ended as " +
                                  rr.outcome.to_string());
            }
        }

        // (5) Pruned-vs-unpruned cross-check: pruning only deletes
        // conjuncts, so the pruned condition still holds on the originating
        // input, is still satisfiable (never solver-Unsat), and still ends
        // in the assertion-violating predicate when the original did.
        core::PredicatePruner pruner(*run.pool, o.acl, view.failing_pcs(),
                                     view.passing_pcs(), core::PruningConfig{});
        for (const core::ReducedPath& rp : pruner.prune_all()) {
            const gen::Test* origin = nullptr;
            for (const gen::Test* f : view.failing) {
                if (&f->result.pc == rp.original) origin = f;
            }
            if (origin == nullptr) {
                add_violation(report, "pruning-origin-missing",
                              acl_label(o.acl) +
                                  " pruner returned a path not in the failing view");
                continue;
            }
            const exec::InputEvalEnv env(method, origin->input);
            for (std::size_t i = 0; i < rp.preds.size(); ++i) {
                if (!eval_true(rp.preds[i].expr, env)) {
                    add_violation(report, "pruned-pc-self-consistency",
                                  acl_label(o.acl) + " pruned conjunct #" +
                                      std::to_string(i) +
                                      " is false on the originating input of test " +
                                      std::to_string(origin->id));
                    break;
                }
            }
            if (!rp.preds.empty()) {
                std::vector<const sym::Expr*> kept;
                kept.reserve(rp.preds.size());
                for (const core::PathPredicate& pp : rp.preds) kept.push_back(pp.expr);
                if (check_solver.solve(kept).status == solver::SolveStatus::Unsat) {
                    add_violation(report, "pruned-pc-unsat",
                                  acl_label(o.acl) + " pruned condition of test " +
                                      std::to_string(origin->id) +
                                      " became unsatisfiable");
                }
            }
            if (!rp.original->preds.empty() &&
                rp.original->preds.back().acl() == o.acl &&
                (rp.preds.empty() || !(rp.preds.back().acl() == o.acl))) {
                add_violation(report, "pruning-dropped-check",
                              acl_label(o.acl) +
                                  " pruning removed the assertion-violating predicate "
                                  "of test " +
                                  std::to_string(origin->id));
            }
        }
    }
}

// --- backend equivalence -----------------------------------------------------

exec::Backend flipped(exec::Backend b) {
    return b == exec::Backend::IL ? exec::Backend::Ast : exec::Backend::IL;
}

/// Predicate-for-predicate equality. Both executions intern into the SAME
/// pool, so equal shadow semantics means pointer-equal expressions — this is
/// strictly stronger than comparing signatures.
bool same_path_condition(const core::PathCondition& a, const core::PathCondition& b) {
    if (a.preds.size() != b.preds.size() || a.visits.size() != b.visits.size()) {
        return false;
    }
    for (std::size_t i = 0; i < a.preds.size(); ++i) {
        const core::PathPredicate& x = a.preds[i];
        const core::PathPredicate& y = b.preds[i];
        if (x.expr != y.expr || x.site_id != y.site_id || x.check != y.check) {
            return false;
        }
    }
    for (std::size_t i = 0; i < a.visits.size(); ++i) {
        if (!(a.visits[i].acl == b.visits[i].acl) ||
            a.visits[i].position != b.visits[i].position) {
            return false;
        }
    }
    return true;
}

/// The IL interpreter must be observationally identical to the AST walker
/// (docs/IL.md): same outcomes, step counts, block coverage and path
/// conditions, and therefore the same inference results downstream.
void check_backend_equivalence(api::InferenceEngine& engine, const std::string& source,
                               const gen::ExplorerConfig& config,
                               const solver::SolveCache::Options& cache,
                               const api::PipelineArtifacts& primary,
                               OracleReport& report) {
    const exec::Backend other = flipped(config.backend);

    // (a) Whole-pipeline fingerprint: exploration, inference and pruning
    // must not be able to tell the backends apart.
    gen::ExplorerConfig flipped_config = config;
    flipped_config.backend = other;
    const auto alt = run_pipeline(engine, source, flipped_config, &cache);
    if (fingerprint(*alt) != fingerprint(primary)) {
        add_violation(report, "backend-equivalence",
                      std::string("pipeline fingerprints differ between the ") +
                          exec::backend_name(config.backend) + " and " +
                          exec::backend_name(other) + " backends");
    }

    // (b) Per-execution byte-identity: replay every suite input under the
    // other backend against the primary run's pool. Replays only re-intern
    // expressions the primary run already created, so the pool is unchanged
    // and the comparison is exact.
    const lang::Method& method = primary.method();
    const std::unique_ptr<exec::Executor> interp =
        exec::make_executor(other, *primary.pool, method,
                            primary.explore_config.exec_limits, &primary.program);
    for (const gen::Test& t : primary.suite.tests) {
        const exec::RunResult rr = interp->run(t.input);
        const exec::RunResult& want = t.result;
        std::string diff;
        if (rr.outcome.tag != want.outcome.tag ||
            !(rr.outcome.acl == want.outcome.acl)) {
            diff = "outcome " + rr.outcome.to_string() + " vs " +
                   want.outcome.to_string();
        } else if (rr.steps != want.steps) {
            diff = "steps " + std::to_string(rr.steps) + " vs " +
                   std::to_string(want.steps);
        } else if (rr.covered_blocks != want.covered_blocks) {
            diff = "block coverage differs";
        } else if (!same_path_condition(rr.pc, want.pc)) {
            diff = "path conditions differ";
        }
        if (!diff.empty()) {
            add_violation(report, "backend-execution-divergence",
                          std::string(exec::backend_name(other)) + " replay of test " +
                              std::to_string(t.id) + " on input " +
                              t.input.to_string(method) + " diverged: " + diff);
        }
    }
}

// --- harness jobs-equivalence ------------------------------------------------

void append_outcome(std::string& out, const eval::ApproachOutcome& o) {
    out += o.attempted ? 'A' : '-';
    out += o.inferred ? 'I' : '-';
    if (o.inferred) {
        out += o.strength.sufficient ? 'S' : '-';
        out += o.strength.necessary ? 'N' : '-';
        out += ' ';
        out += std::to_string(o.complexity);
        out += ' ';
        out += o.printed;
        out += " g" + std::to_string(o.generalized_paths);
        out += " p" + std::to_string(o.pruning.pruned);
    }
    out += ';';
}

std::string serialize_result(const eval::HarnessResult& r) {
    std::string out;
    for (const eval::AclRow& row : r.acls) {
        out += row.subject + '/' + row.method + ' ' + acl_label(row.acl);
        out += " pos" + std::to_string(static_cast<int>(row.position));
        out += " f" + std::to_string(row.failing_tests);
        out += " p" + std::to_string(row.passing_tests);
        out += " | ";
        append_outcome(out, row.preinfer);
        append_outcome(out, row.fixit);
        append_outcome(out, row.dysy);
        out += '\n';
    }
    for (const eval::MethodRow& m : r.methods) {
        // Everything but wall_ms, the one documented nondeterministic column.
        out += m.method + " tests" + std::to_string(m.tests) + " acls" +
               std::to_string(m.acls) + " cov" + std::to_string(m.block_coverage) +
               " ch" + std::to_string(m.cache_hits) + " cm" +
               std::to_string(m.cache_misses) + '\n';
    }
    return out;
}

/// Removes the method_begin backend tag — the one trace field that is
/// allowed (and expected) to differ between the two execution backends.
std::string strip_backend_tag(std::string trace) {
    for (const std::string_view needle :
         {std::string_view(",\"backend\":\"il\""),
          std::string_view(",\"backend\":\"ast\"")}) {
        std::size_t pos = 0;
        while ((pos = trace.find(needle, pos)) != std::string::npos) {
            trace.erase(pos, needle.size());
        }
    }
    return trace;
}

void check_jobs_equivalence(const std::string& source, std::uint64_t seed,
                            const gen::ExplorerConfig& explore,
                            OracleReport& report) {
    eval::Subject subject = eval::subject_from_source("fuzz-" + std::to_string(seed),
                                                      source);
    // Two sibling units generated from derived seeds give the thread pool
    // real work to schedule, so jobs=3 actually interleaves units.
    for (int k = 1; k <= 2; ++k) {
        eval::SubjectMethod sm;
        sm.name = "m0_" + std::to_string(k);
        sm.source = generate_source(derive_seed(seed, 9000u + static_cast<unsigned>(k)));
        subject.methods.push_back(std::move(sm));
    }

    eval::HarnessConfig hc;
    hc.explore = explore;
    hc.validation.explore.max_tests = 64;
    hc.validation.explore.max_solver_calls = 1024;
    hc.validation.fuzz_count = 60;
    hc.trace.enabled = true;

    hc.jobs = 1;
    const eval::HarnessResult serial = eval::run_harness({subject}, hc);
    hc.jobs = 3;
    const eval::HarnessResult parallel = eval::run_harness({subject}, hc);

    if (serialize_result(serial) != serialize_result(parallel)) {
        add_violation(report, "jobs-equivalence",
                      "result rows differ between jobs=1 and jobs=3");
    }
    if (serial.trace != parallel.trace) {
        add_violation(report, "jobs-trace-equivalence",
                      "merged traces differ between jobs=1 and jobs=3");
    }

    // The harness is also where whole traces are comparable across the two
    // execution backends: everything except the method_begin backend tag
    // must be byte-identical (docs/IL.md).
    eval::HarnessConfig bc = hc;
    bc.jobs = 1;
    bc.explore.backend = flipped(explore.backend);
    bc.validation.explore.backend = bc.explore.backend;
    const eval::HarnessResult other = eval::run_harness({subject}, bc);
    if (serialize_result(serial) != serialize_result(other)) {
        add_violation(report, "backend-harness-equivalence",
                      "result rows differ between the il and ast backends");
    }
    if (strip_backend_tag(serial.trace) != strip_backend_tag(other.trace)) {
        add_violation(report, "backend-trace-equivalence",
                      "merged traces differ between the backends beyond the "
                      "backend tag");
    }
}

}  // namespace

const char* fault_mode_name(FaultMode mode) {
    switch (mode) {
        case FaultMode::None: return "none";
        case FaultMode::SolverStarvation: return "solver-starvation";
        case FaultMode::SolverBlackout: return "solver-blackout";
        case FaultMode::StepExhaustion: return "step-exhaustion";
        case FaultMode::PoolPressure: return "pool-pressure";
    }
    return "unknown";
}

OracleReport check_source(const std::string& source, std::uint64_t seed,
                          const OracleConfig& cfg) {
    OracleReport report;
    report.seed = seed;
    report.fault = cfg.fault;
    report.source = source;
    try {
        if (cfg.check_roundtrip) {
            lang::Program reparsed = lang::parse_program(source);
            const std::string reprinted = lang::to_string(reparsed);
            if (reprinted != source) {
                add_violation(report, "print-idempotence",
                              "print(parse(source)) differs from source");
            }
        }

        const gen::ExplorerConfig config = make_explorer_config(cfg);
        const solver::SolveCache::Options default_cache{};
        api::InferenceEngine engine({.jobs = 1});
        const auto primary = run_pipeline(engine, source, config, &default_cache);
        report.tests = static_cast<int>(primary->suite.tests.size());
        for (const gen::Test& t : primary->suite.tests) {
            if (t.result.outcome.failing()) ++report.failing_tests;
        }
        report.acls = static_cast<int>(primary->inferences.size());
        check_soundness(*primary, cfg, report);

        if (cfg.check_backend) {
            check_backend_equivalence(engine, source, config, default_cache,
                                      *primary, report);
        }

        if (cfg.check_prepass) {
            // The interval pre-pass must be invisible to everything
            // downstream of the solver: same statuses, same witness models,
            // same budget charging, hence the same suite and inferences.
            // Checked under every fault mode — a pre-pass that only matches
            // trajectories on healthy runs would still be a bug.
            gen::ExplorerConfig no_prepass = config;
            no_prepass.solver_config.abstract_prepass = false;
            const auto v_pre =
                run_pipeline(engine, source, no_prepass, &default_cache);
            if (fingerprint(*v_pre) != fingerprint(*primary)) {
                add_violation(report, "prepass-equivalence",
                              "pipeline fingerprints differ with the interval "
                              "pre-pass on vs off");
            }
        }

        if (cfg.check_disk_cache) {
            // Two legs, both fingerprint-compared against the primary run.
            // (1) A recording rerun: attaching the offline recorder must be
            // completely passive. (2) A replay against the tier the
            // recording built: every disk hit must be a bit-for-bit replay
            // of the solve it replaced, budgets included. Runs under every
            // fault mode — the tier's config fingerprint covers the
            // solver-level fault seams.
            solver::DiskCacheBuilder builder(config.solver_config);
            const auto v_record =
                run_pipeline(engine, source, config, &default_cache, &builder);
            if (fingerprint(*v_record) != fingerprint(*primary)) {
                add_violation(report, "disk-cache-equivalence",
                              "attaching the solve recorder changed the "
                              "pipeline fingerprint");
            } else if (builder.size() > 0) {
                // (The guarded loader rejects empty caches by design, so a
                // query-free run simply has nothing to replay.)
                std::string error;
                const auto disk = solver::DiskCache::load_buffer(
                    builder.serialize(), builder.config_fingerprint(), &error);
                if (disk == nullptr) {
                    add_violation(report, "disk-cache-equivalence",
                                  "freshly built cache failed validation: " +
                                      error);
                } else {
                    const auto v_disk = run_pipeline(
                        engine, source, config, &default_cache, nullptr, disk);
                    if (fingerprint(*v_disk) != fingerprint(*primary)) {
                        add_violation(report, "disk-cache-equivalence",
                                      "pipeline fingerprints differ with the "
                                      "persistent tier on vs off");
                    }
                }
            }
        }

        if (cfg.fault == FaultMode::None && cfg.check_determinism) {
            const std::string base_fp = fingerprint(*primary);
            const auto rerun = run_pipeline(engine, source, config, &default_cache);
            if (fingerprint(*rerun) != base_fp) {
                add_violation(report, "determinism-rerun",
                              "two identical runs produced different results");
            }
            gen::ExplorerConfig from_scratch = config;
            from_scratch.incremental = false;
            const auto v_inc =
                run_pipeline(engine, source, from_scratch, &default_cache);
            if (fingerprint(*v_inc) != base_fp) {
                add_violation(report, "determinism-incremental",
                              "incremental and from-scratch solving diverged");
            }
            solver::SolveCache::Options no_subsumption;
            no_subsumption.unsat_subsumption = false;
            const auto v_sub = run_pipeline(engine, source, config, &no_subsumption);
            if (fingerprint(*v_sub) != base_fp) {
                add_violation(report, "determinism-subsumption",
                              "unsat subsumption on/off diverged");
            }
            // A cache-less run re-solves repeated conjunct sets with
            // whatever seed the repeat carries, so its witness models (and
            // thus its suite) may legitimately differ; it still has to
            // satisfy every soundness theorem. Fingerprints are not
            // compared — docs/FUZZING.md explains why.
            OracleConfig uncached_cfg = cfg;
            uncached_cfg.check_determinism = false;
            uncached_cfg.check_jobs_equivalence = false;
            const auto v_nocache = run_pipeline(engine, source, config, nullptr);
            check_soundness(*v_nocache, uncached_cfg, report);
        }

        if (cfg.fault == FaultMode::None && cfg.check_jobs_equivalence) {
            check_jobs_equivalence(source, seed, config, report);
        }
    } catch (const std::exception& e) {
        add_violation(report, "unhandled-exception", e.what());
    } catch (...) {
        add_violation(report, "unhandled-exception", "non-standard exception");
    }
    return report;
}

OracleReport check_program(std::uint64_t seed, const OracleConfig& cfg) {
    const lang::Program generated = generate_program(seed, cfg.gen);
    const std::string source = lang::to_string(generated);
    OracleReport report = check_source(source, seed, cfg);
    if (cfg.check_roundtrip) {
        try {
            const lang::Program reparsed = lang::parse_program(source);
            if (!lang::structurally_equal(generated, reparsed)) {
                add_violation(report, "print-parse-roundtrip",
                              "parse(print(ast)) is not structurally equal to ast");
            }
        } catch (const std::exception& e) {
            add_violation(report, "generated-source-rejected", e.what());
        }
    }
    return report;
}

// --- minimizer ---------------------------------------------------------------

namespace {

int count_stmts(const lang::Program& p) {
    int n = 0;
    for (const lang::Method& m : p.methods) {
        lang::for_each_stmt(m.body, [&n](const lang::StmtNode&) { ++n; });
    }
    return n;
}

/// Deletes the `n`-th statement (pre-order across nested bodies) from the
/// list; decrements `n` past visited statements and reports whether the
/// deletion happened inside this subtree.
bool delete_nth(std::vector<lang::StmtPtr>& stmts, int& n) {
    for (std::size_t i = 0; i < stmts.size(); ++i) {
        if (n == 0) {
            stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(i));
            return true;
        }
        --n;
        lang::StmtNode& s = *stmts[i];
        if (delete_nth(s.body, n)) return true;
        if (delete_nth(s.else_body, n)) return true;
    }
    return false;
}

/// Replaces the `n`-th statement with its own body (then else-body)
/// contents — unwrapping an if/while/block while keeping the inner
/// statements. Returns true when position `n` was reached (even if the
/// statement had nothing to hoist; the caller's size guard rejects no-ops).
bool hoist_nth(std::vector<lang::StmtPtr>& stmts, int& n) {
    for (std::size_t i = 0; i < stmts.size(); ++i) {
        if (n == 0) {
            lang::StmtNode& s = *stmts[i];
            std::vector<lang::StmtPtr> inner;
            for (lang::StmtPtr& k : s.body) inner.push_back(std::move(k));
            for (lang::StmtPtr& k : s.else_body) inner.push_back(std::move(k));
            stmts.erase(stmts.begin() + static_cast<std::ptrdiff_t>(i));
            stmts.insert(stmts.begin() + static_cast<std::ptrdiff_t>(i),
                         std::make_move_iterator(inner.begin()),
                         std::make_move_iterator(inner.end()));
            return true;
        }
        --n;
        lang::StmtNode& s = *stmts[i];
        if (hoist_nth(s.body, n)) return true;
        if (hoist_nth(s.else_body, n)) return true;
    }
    return false;
}

using Transform = bool (*)(std::vector<lang::StmtPtr>&, int&);

bool apply_nth(lang::Program& p, int n, Transform transform) {
    for (lang::Method& m : p.methods) {
        if (transform(m.body, n)) return true;
    }
    return false;
}

}  // namespace

std::string minimize_source(
    const std::string& source,
    const std::function<bool(const std::string&)>& still_failing) {
    lang::Program prog;
    try {
        prog = lang::parse_program(source);
    } catch (const std::exception&) {
        return source;  // not shrinkable structurally
    }
    std::string best = lang::to_string(prog);
    if (!still_failing(best)) return source;

    bool changed = true;
    while (changed) {
        changed = false;

        for (const Transform transform : {&delete_nth, &hoist_nth}) {
            const int total = count_stmts(prog);
            for (int k = 0; k < total; ++k) {
                lang::Program candidate = lang::clone(prog);
                if (!apply_nth(candidate, k, transform)) break;
                const std::string cs = lang::to_string(candidate);
                // The strict size guard makes every accepted step shrink the
                // source, so minimization always terminates.
                if (cs.size() < best.size() && still_failing(cs)) {
                    prog = std::move(candidate);
                    best = cs;
                    changed = true;
                    break;
                }
            }
            if (changed) break;
        }
        if (changed) continue;

        // Drop trailing (callee) methods wholesale.
        for (std::size_t mi = 1; mi < prog.methods.size(); ++mi) {
            lang::Program candidate = lang::clone(prog);
            candidate.methods.erase(candidate.methods.begin() +
                                    static_cast<std::ptrdiff_t>(mi));
            const std::string cs = lang::to_string(candidate);
            if (cs.size() < best.size() && still_failing(cs)) {
                prog = std::move(candidate);
                best = cs;
                changed = true;
                break;
            }
        }
    }
    return best;
}

}  // namespace preinfer::fuzz
