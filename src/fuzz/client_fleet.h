#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "src/fuzz/diff_oracle.h"

namespace preinfer::fuzz {

/// Configuration of the serve client fleet (docs/FUZZING.md § client
/// fleet): N concurrent socket clients hammering a preinfer-serve socket
/// server with generated programs, malformed lines, bad budgets, deadlines
/// and (via the wire fault seam) the solver-unknown / pool-limit fault
/// modes, checking the serving contract from the client side.
struct FleetConfig {
    int connections = 8;
    int requests_per_connection = 12;
    std::uint64_t seed = 1;
    /// Sprinkle `fault` fields over the requests (requires the server to
    /// run with allow_fault; the in-process server always does).
    bool inject_faults = true;
    /// Require at least one `"error":"overloaded"` response: set together
    /// with a tiny max_pending to prove load-shedding engages.
    bool expect_shed = false;
    /// Admission bound of the in-process server (ignored with `connect`).
    int max_pending = 256;
    /// Engine worker threads of the in-process server; 0 = hardware.
    int jobs = 0;
    /// Address of an already-running server (unix path or host:port).
    /// Empty: spawn an in-process api::Server on a private unix socket and
    /// also cross-check its final stats against the fleet's observations.
    std::string connect;
};

/// What the fleet observed, plus every contract violation. The checks are
/// the serving-side analogue of the differential oracle: every request line
/// gets exactly one response, responses arrive in per-connection input
/// order with the request's id echoed, every response is structurally
/// well-formed, schema errors fail loudly, shed responses say "overloaded",
/// and (in-process) the server's own counters agree with the clients'.
struct FleetReport {
    std::int64_t connections = 0;
    std::int64_t requests = 0;
    std::int64_t ok = 0;
    std::int64_t failed = 0;  ///< ok:false responses (shed included)
    std::int64_t shed = 0;    ///< `"error":"overloaded"` responses
    std::vector<Violation> violations;

    [[nodiscard]] bool ok_run() const { return violations.empty(); }
};

/// Runs the fleet to completion (all clients joined; in-process server
/// drained via its graceful-stop path). Never throws.
[[nodiscard]] FleetReport run_client_fleet(const FleetConfig& config);

}  // namespace preinfer::fuzz
