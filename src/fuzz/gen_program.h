#pragma once

#include <cstdint>
#include <string>

#include "src/lang/ast.h"

namespace preinfer::fuzz {

/// Knobs of the seeded MiniLang program generator. The defaults are tuned
/// so a typical program has a handful of parameters, nested control flow,
/// at least one assertion-containing location (an `assert`, a division, an
/// index or a dereference) and terminates within the interpreter budgets
/// on almost every input; occasional divergence is fine — exploration
/// classifies it as Exhausted and moves on.
struct GenConfig {
    int min_params = 1;
    int max_params = 4;
    int max_block_stmts = 5;  ///< statements generated per block
    int max_stmt_depth = 3;   ///< if/while nesting
    int max_expr_depth = 3;
    int max_loop_literal = 4;  ///< literal loop bounds stay small
    bool allow_loops = true;
    bool allow_helper_method = true;  ///< sometimes emit + call an int callee
};

/// Deterministically generates one well-typed MiniLang program from the
/// seed: same seed + config = byte-identical program on every platform
/// (the generator draws bits from a SplitMix-fed engine directly, never
/// through distribution objects, whose output is implementation-defined).
///
/// The first method is the method under test; a helper callee may follow.
/// The returned AST has no node ids, types or block labels — print it and
/// re-parse (what generate_source does) to obtain a frontend-ready unit,
/// or run the frontend passes on it directly.
[[nodiscard]] lang::Program generate_program(std::uint64_t seed,
                                             const GenConfig& config = {});

/// lang::to_string(generate_program(seed, config)): the canonical textual
/// form, used as the interchange format for repro emission (docs/FUZZING.md).
[[nodiscard]] std::string generate_source(std::uint64_t seed,
                                          const GenConfig& config = {});

/// The fuzzer's per-iteration seed derivation (SplitMix64 over the base
/// seed and iteration index), shared by the driver and the tests so a
/// failure report's `program-seed` reproduces with generate_program alone.
[[nodiscard]] std::uint64_t derive_seed(std::uint64_t base, std::uint64_t iteration);

}  // namespace preinfer::fuzz
