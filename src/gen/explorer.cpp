#include "src/gen/explorer.h"

#include <deque>
#include <unordered_set>

#include "src/gen/reconstruct.h"

namespace preinfer::gen {

namespace {

using exec::ArgValue;
using exec::Input;
using exec::IntArrInput;
using exec::StrArrInput;
using exec::StrInput;

/// Canonical non-default seed inputs; variant picks one of a few shapes.
Input make_seed(const lang::Method& method, int variant) {
    Input in;
    for (const lang::Param& p : method.params) {
        switch (p.type) {
            case lang::Type::Int:
                in.args.emplace_back(std::int64_t{variant == 0 ? 1 : (variant == 1 ? -1 : 3)});
                break;
            case lang::Type::Bool:
                in.args.emplace_back(variant != 1);
                break;
            case lang::Type::Str:
                in.args.emplace_back(variant == 0   ? StrInput::of("a")
                                     : variant == 1 ? StrInput::of(" ")
                                                    : StrInput::of("ab "));
                break;
            case lang::Type::IntArr:
                in.args.emplace_back(variant == 0   ? IntArrInput::of({1})
                                     : variant == 1 ? IntArrInput::of({0, 1})
                                                    : IntArrInput::of({1, 0, 3}));
                break;
            case lang::Type::StrArr:
                in.args.emplace_back(
                    variant == 0   ? StrArrInput::of({StrInput::of("a")})
                    : variant == 1 ? StrArrInput::of({StrInput::null()})
                                   : StrArrInput::of({StrInput::of("a"), StrInput::null()}));
                break;
            case lang::Type::Void:
                break;
        }
    }
    return in;
}

}  // namespace

Explorer::Explorer(sym::ExprPool& pool, const lang::Method& method, ExplorerConfig config,
                   const lang::Program* program, solver::SolveCache* cache)
    : pool_(pool),
      method_(method),
      config_(config),
      interp_(pool, method, config.exec_limits, program),
      solver_(pool, config.solver_config),
      cache_(cache) {}

solver::SolveResult Explorer::solve_conjuncts(
    std::span<const sym::Expr* const> conjuncts, const solver::Model* seed) {
    if (cache_ != nullptr) {
        if (const solver::SolveResult* cached = cache_->lookup(conjuncts)) {
            ++stats_.cache_hits;
            return *cached;
        }
        ++stats_.cache_misses;
    }
    ++stats_.solver_calls;
    solver::SolveResult res = solver_.solve(conjuncts, seed);
    if (cache_ != nullptr) cache_->insert(conjuncts, res);
    return res;
}

std::vector<exec::Input> Explorer::seed_inputs() const {
    std::vector<exec::Input> seeds;
    seeds.push_back(exec::default_input(method_));
    if (config_.extra_seeds) {
        for (int v = 0; v < 3; ++v) seeds.push_back(make_seed(method_, v));
    }
    return seeds;
}

TestSuite Explorer::explore() {
    TestSuite suite;
    std::unordered_set<std::uint64_t> seen_inputs;
    std::unordered_set<std::uint64_t> seen_paths;

    // (suite index, generation bound): children may only flip predicates at
    // or beyond the bound.
    std::deque<std::pair<std::size_t, int>> work;

    auto execute = [&](exec::Input input, int bound) {
        // Budget before dedup bookkeeping: an input rejected purely because
        // the suite is full must not enter seen_inputs, or it would be
        // permanently poisoned for runs that interleave budget checks.
        if (static_cast<int>(suite.tests.size()) >= config_.max_tests) return;
        if (!seen_inputs.insert(input.hash()).second) {
            ++stats_.duplicate_inputs;
            return;
        }
        Test t;
        t.input = std::move(input);
        t.result = interp_.run(t.input);
        ++stats_.executions;
        if (!seen_paths.insert(t.result.pc.signature()).second) {
            ++stats_.duplicate_paths;
            return;  // identical path: nothing new to learn or expand
        }
        // Ids are assigned only to retained tests, keeping suite ids
        // contiguous regardless of how many duplicates were discarded.
        t.id = next_test_id_++;
        suite.tests.push_back(std::move(t));
        work.emplace_back(suite.tests.size() - 1, bound);
    };

    for (exec::Input& seed : seed_inputs()) execute(std::move(seed), 0);

    while (!work.empty()) {
        if (stats_.solver_calls >= config_.max_solver_calls) break;
        if (static_cast<int>(suite.tests.size()) >= config_.max_tests) break;

        const auto [idx, bound] = work.front();
        work.pop_front();

        // Copy what we need up front: suite.tests may reallocate as children
        // are appended inside the loop.
        const core::PathCondition pc = suite.tests[idx].result.pc;
        const exec::Input parent_input = suite.tests[idx].input;
        const solver::Model seed = seed_model(pool_, method_, parent_input);

        const int limit =
            std::min<int>(static_cast<int>(pc.size()), config_.max_flip_depth);
        for (int j = bound; j < limit; ++j) {
            if (stats_.solver_calls >= config_.max_solver_calls) break;
            if (static_cast<int>(suite.tests.size()) >= config_.max_tests) break;

            std::vector<const sym::Expr*> conjuncts;
            conjuncts.reserve(static_cast<std::size_t>(j) + 1);
            for (int k = 0; k < j; ++k) conjuncts.push_back(pc.preds[static_cast<std::size_t>(k)].expr);
            conjuncts.push_back(pool_.negate(pc.preds[static_cast<std::size_t>(j)].expr));

            const solver::SolveResult res = solve_conjuncts(conjuncts, &seed);
            switch (res.status) {
                case solver::SolveStatus::Sat: ++stats_.sat; break;
                case solver::SolveStatus::Unsat: ++stats_.unsat; continue;
                case solver::SolveStatus::Unknown: ++stats_.unknown; continue;
            }
            exec::Input child = reconstruct_input(pool_, method_, res.model,
                                                  &parent_input,
                                                  config_.materialize_max_len);
            execute(std::move(child), j + 1);
        }
    }
    return suite;
}

std::optional<Test> Explorer::run_constrained(
    std::span<const sym::Expr* const> conjuncts, const exec::Input* base) {
    // On-demand oracles share max_solver_calls with the generational
    // search; once the budget is spent, refuse further witness queries
    // instead of silently blowing past the cap.
    if (stats_.solver_calls >= config_.max_solver_calls) return std::nullopt;
    std::optional<solver::Model> seed;
    if (base) seed = seed_model(pool_, method_, *base);
    const solver::SolveResult res =
        solve_conjuncts(conjuncts, seed ? &*seed : nullptr);
    if (!res.sat()) {
        if (res.status == solver::SolveStatus::Unsat) {
            ++stats_.unsat;
        } else {
            ++stats_.unknown;
        }
        return std::nullopt;
    }
    ++stats_.sat;
    Test t;
    t.id = next_test_id_++;
    t.input = reconstruct_input(pool_, method_, res.model, base,
                                config_.materialize_max_len);
    t.result = interp_.run(t.input);
    ++stats_.executions;
    return t;
}

}  // namespace preinfer::gen
