#include "src/gen/explorer.h"

#include <chrono>
#include <deque>
#include <string_view>
#include <unordered_set>

#include "src/gen/reconstruct.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace preinfer::gen {

namespace {

using exec::ArgValue;
using exec::Input;
using exec::IntArrInput;
using exec::StrArrInput;
using exec::StrInput;

/// Canonical non-default seed inputs; variant picks one of a few shapes.
Input make_seed(const lang::Method& method, int variant) {
    Input in;
    for (const lang::Param& p : method.params) {
        switch (p.type) {
            case lang::Type::Int:
                in.args.emplace_back(std::int64_t{variant == 0 ? 1 : (variant == 1 ? -1 : 3)});
                break;
            case lang::Type::Bool:
                in.args.emplace_back(variant != 1);
                break;
            case lang::Type::Str:
                in.args.emplace_back(variant == 0   ? StrInput::of("a")
                                     : variant == 1 ? StrInput::of(" ")
                                                    : StrInput::of("ab "));
                break;
            case lang::Type::IntArr:
                in.args.emplace_back(variant == 0   ? IntArrInput::of({1})
                                     : variant == 1 ? IntArrInput::of({0, 1})
                                                    : IntArrInput::of({1, 0, 3}));
                break;
            case lang::Type::StrArr:
                in.args.emplace_back(
                    variant == 0   ? StrArrInput::of({StrInput::of("a")})
                    : variant == 1 ? StrArrInput::of({StrInput::null()})
                                   : StrArrInput::of({StrInput::of("a"), StrInput::null()}));
                break;
            case lang::Type::Void:
                break;
        }
    }
    return in;
}

}  // namespace

Explorer::Explorer(sym::ExprPool& pool, const lang::Method& method, ExplorerConfig config,
                   const lang::Program* program, solver::SolveCache* cache,
                   solver::AtomIndex* index)
    : pool_(pool),
      method_(method),
      config_(config),
      interp_(exec::make_executor(config.backend, pool, method,
                               config.exec_limits, program)),
      solver_(pool, config.solver_config, index),
      ctx_(solver_),
      cache_(cache) {}

namespace {

const char* status_name(solver::SolveStatus status) {
    switch (status) {
        case solver::SolveStatus::Sat: return "sat";
        case solver::SolveStatus::Unsat: return "unsat";
        case solver::SolveStatus::Unknown: return "unknown";
    }
    return "unknown";
}

/// `micros` < 0 means "not a searched solve" (cache answers, pre-pass
/// discharges): the event then carries no timing and solver.solve_us — the
/// residual-solve-call histogram BENCH_solver.json tracks — is not
/// observed. Pre-pass discharges pass their measured wall time separately
/// via `prepass_micros` so it lands in solver.prepass_us instead.
void record_solver_query(std::size_t conjuncts, solver::SolveStatus status,
                         const char* cache_state, std::int64_t micros,
                         std::int64_t prepass_micros = -1) {
    if (support::trace_active()) {
        support::TraceEvent event(support::TraceEventKind::SolverQuery);
        event.field("conjuncts", conjuncts)
            .field("status", status_name(status))
            .field("cache", cache_state);
        if (support::trace_timings() && micros >= 0) event.field("micros", micros);
        event.emit();
    }
    if (support::metrics_enabled()) {
        auto& registry = support::MetricsRegistry::global();
        static auto& queries = registry.counter("solver.queries");
        static auto& hits = registry.counter("solver.cache_hits");
        static auto& misses = registry.counter("solver.cache_misses");
        static auto& model_reuse = registry.counter("solver.cache_model_reuse");
        static auto& subsumed = registry.counter("solver.cache_unsat_subsumed");
        static auto& prepass_sat = registry.counter("solver.prepass_sat");
        static auto& prepass_unsat = registry.counter("solver.prepass_unsat");
        static auto& disk_hits = registry.counter("solver.disk_hits");
        static auto& sat = registry.counter("solver.sat");
        static auto& unsat = registry.counter("solver.unsat");
        static auto& unknown = registry.counter("solver.unknown");
        static auto& solve_us = registry.histogram("solver.solve_us");
        static auto& prepass_us = registry.histogram("solver.prepass_us");
        queries.add();
        // Full-string compare: "miss" and "model" share a first letter.
        const std::string_view state = cache_state;
        if (state == "hit") hits.add();
        if (state == "miss") misses.add();
        if (state == "model") model_reuse.add();
        if (state == "subsume") subsumed.add();
        if (state == "prepass") {
            // A pre-pass discharge is still an exact-key cache miss (the
            // lookup failed; the solve just never searched), so the miss
            // counter stays prepass-invariant like the explorer's stats.
            misses.add();
            (status == solver::SolveStatus::Unsat ? prepass_unsat : prepass_sat)
                .add();
            if (prepass_micros >= 0) prepass_us.observe(prepass_micros);
        }
        if (state == "disk") {
            // Like "prepass": the in-memory lookup already missed, so the
            // miss counter stays disk-tier-invariant; the disk answer is
            // attributed separately and never observes solver.solve_us.
            misses.add();
            disk_hits.add();
        }
        switch (status) {
            case solver::SolveStatus::Sat: sat.add(); break;
            case solver::SolveStatus::Unsat: unsat.add(); break;
            case solver::SolveStatus::Unknown: unknown.add(); break;
        }
        if (micros >= 0) solve_us.observe(micros);
    }
}

}  // namespace

template <typename SolveFn>
solver::SolveResult Explorer::solve_with_cache(
    std::span<const sym::Expr* const> conjuncts, const solver::Model* seed,
    SolveFn&& solve) {
    // Observability: the clock is read only when a timing consumer is
    // active, so the common (untraced, unmetered) path stays clock-free.
    const bool observed = support::trace_active() || support::metrics_enabled();
    const bool timed = support::metrics_enabled() ||
                       (support::trace_active() && support::trace_timings());
    if (cache_ != nullptr) {
        const solver::SolveCache::LookupResult cached = cache_->lookup(conjuncts);
        if (cached.result != nullptr) {
            const char* state = "hit";
            switch (cached.kind) {
                case solver::SolveCache::HitKind::Exact:
                    ++stats_.cache_hits;
                    break;
                // Semantic answers substitute for the Solver::solve call the
                // query would otherwise have made, so they charge the solver
                // budget like one. This keeps the exploration trajectory —
                // which paths get expanded before max_solver_calls runs out —
                // independent of the cache's semantic options.
                case solver::SolveCache::HitKind::ModelReuse:
                    ++stats_.cache_model_reuse;
                    ++stats_.solver_calls;
                    state = "model";
                    break;
                case solver::SolveCache::HitKind::Subsumed:
                    ++stats_.cache_unsat_subsumed;
                    ++stats_.solver_calls;
                    state = "subsume";
                    break;
                case solver::SolveCache::HitKind::Miss: break;  // unreachable
            }
            if (observed) {
                record_solver_query(conjuncts.size(), cached.result->status,
                                    state, -1);
            }
            return *cached.result;
        }
        ++stats_.cache_misses;
    }
    // Fault seam: past the starvation threshold the query is charged but
    // answered Unknown without searching. The result is not cached — it is
    // an injected failure, not a fact about the conjunction — so cache-on
    // and cache-off runs starve at the same charged-query index.
    if (config_.fault_solver_unknown_after >= 0 &&
        stats_.solver_calls >= config_.fault_solver_unknown_after) {
        ++stats_.solver_calls;
        const solver::SolveResult starved{solver::SolveStatus::Unknown, {}};
        if (observed) {
            record_solver_query(conjuncts.size(), starved.status,
                                cache_ != nullptr ? "miss" : "off", -1);
        }
        return starved;
    }
    // Persistent tier: consulted exactly where a real solve would run —
    // after the in-memory lookup missed *and* the starvation gate passed —
    // so tier-on and tier-off runs issue the same charged-query sequence.
    // A hit is a recorded replay of this exact (query, seed, config) solve,
    // so it is budget-charged like the solve it replaces and re-inserted
    // under the query's exact key (repeats become exact hits).
    if (cache_ != nullptr && cache_->disk_attached()) {
        if (const std::optional<solver::SolveResult> replay =
                cache_->disk_lookup(conjuncts, seed)) {
            // The skipped solve would have interned implied IsNull/Len pool
            // nodes while normalizing first-sight atoms; replay those side
            // effects so expression ids (and every downstream structural
            // hash, e.g. path-condition signatures) stay byte-identical to
            // a tier-off run.
            solver_.prime(conjuncts);
            ++stats_.solver_calls;
            ++stats_.disk_hits;
            if (observed) {
                record_solver_query(conjuncts.size(), replay->status, "disk", -1);
            }
            cache_->insert(conjuncts, *replay);
            return *replay;
        }
        ++stats_.disk_misses;
        if (support::metrics_enabled()) {
            static auto& m_disk_misses =
                support::MetricsRegistry::global().counter("solver.disk_misses");
            m_disk_misses.add();
        }
    }
    ++stats_.solver_calls;
    using clock = std::chrono::steady_clock;
    const clock::time_point start = timed ? clock::now() : clock::time_point{};
    solver::SolveResult res = solve();
    // Abstract pre-pass discharge (root-node interval propagation answered
    // without search): already budget-charged above like every solve, but
    // reported like a semantic cache answer — a distinct `cache` state, no
    // solver.solve_us observation (so that histogram keeps counting only
    // searched solves), wall time in solver.prepass_us instead. Statuses
    // and models are identical either way, so trajectories don't move.
    const auto prepass = solver_.stats().prepass;
    if (prepass == solver::Solver::Stats::Prepass::Unsat) ++stats_.prepass_unsat;
    if (prepass == solver::Solver::Stats::Prepass::Sat) ++stats_.prepass_sat;
    if (observed) {
        const std::int64_t micros =
            timed ? std::chrono::duration_cast<std::chrono::microseconds>(
                        clock::now() - start)
                        .count()
                  : -1;
        if (prepass != solver::Solver::Stats::Prepass::None) {
            record_solver_query(conjuncts.size(), res.status, "prepass", -1,
                                micros);
        } else {
            record_solver_query(conjuncts.size(), res.status,
                                cache_ != nullptr ? "miss" : "off", micros);
        }
    }
    if (cache_ != nullptr) {
        cache_->insert(conjuncts, res);
        // Offline recording mirrors the disk lookup keying: the builder
        // files this result under the same (query, seed, config) signature
        // a future disk_lookup will compute.
        cache_->record_solve(conjuncts, seed, res);
    }
    return res;
}

solver::SolveResult Explorer::solve_conjuncts(
    std::span<const sym::Expr* const> conjuncts, const solver::Model* seed) {
    return solve_with_cache(conjuncts, seed,
                            [&] { return solver_.solve(conjuncts, seed); });
}

std::vector<exec::Input> Explorer::seed_inputs() const {
    std::vector<exec::Input> seeds;
    seeds.push_back(exec::default_input(method_));
    if (config_.extra_seeds) {
        for (int v = 0; v < 3; ++v) seeds.push_back(make_seed(method_, v));
    }
    return seeds;
}

TestSuite Explorer::explore() {
    TestSuite suite;
    std::unordered_set<std::uint64_t> seen_inputs;
    std::unordered_set<std::uint64_t> seen_paths;

    // (suite index, generation bound): children may only flip predicates at
    // or beyond the bound.
    std::deque<std::pair<std::size_t, int>> work;

    auto& registry = support::MetricsRegistry::global();
    static auto& m_executions = registry.counter("explorer.executions");
    static auto& m_retained = registry.counter("explorer.paths_retained");
    static auto& m_dup_inputs = registry.counter("explorer.duplicate_inputs");
    static auto& m_dup_paths = registry.counter("explorer.duplicate_paths");

    auto execute = [&](exec::Input input, int bound) {
        // Budget before dedup bookkeeping: an input rejected purely because
        // the suite is full must not enter seen_inputs, or it would be
        // permanently poisoned for runs that interleave budget checks.
        if (static_cast<int>(suite.tests.size()) >= config_.max_tests) return;
        if (!seen_inputs.insert(input.hash()).second) {
            ++stats_.duplicate_inputs;
            if (support::metrics_enabled()) m_dup_inputs.add();
            if (support::trace_active()) {
                support::TraceEvent(support::TraceEventKind::PathDuplicate)
                    .field("reason", "input")
                    .emit();
            }
            return;
        }
        Test t;
        t.input = std::move(input);
        t.result = interp_->run(t.input);
        ++stats_.executions;
        if (support::metrics_enabled()) m_executions.add();
        if (!seen_paths.insert(t.result.pc.signature()).second) {
            ++stats_.duplicate_paths;
            if (support::metrics_enabled()) m_dup_paths.add();
            if (support::trace_active()) {
                support::TraceEvent(support::TraceEventKind::PathDuplicate)
                    .field("reason", "path")
                    .emit();
            }
            return;  // identical path: nothing new to learn or expand
        }
        // Ids are assigned only to retained tests, keeping suite ids
        // contiguous regardless of how many duplicates were discarded.
        t.id = next_test_id_++;
        if (support::metrics_enabled()) m_retained.add();
        if (support::trace_active()) {
            support::TraceEvent event(support::TraceEventKind::PathRetained);
            event.field("test", t.id)
                .field("preds", t.result.pc.size())
                .field("failing", t.result.outcome.failing());
            if (t.result.outcome.failing()) {
                event
                    .field("acl_kind",
                           core::exception_kind_name(t.result.outcome.acl.kind))
                    .field("acl_node", t.result.outcome.acl.node_id);
            }
            event.emit();
        }
        suite.tests.push_back(std::move(t));
        work.emplace_back(suite.tests.size() - 1, bound);
    };

    for (exec::Input& seed : seed_inputs()) execute(std::move(seed), 0);

    while (!work.empty()) {
        if (stats_.solver_calls >= config_.max_solver_calls) break;
        if (static_cast<int>(suite.tests.size()) >= config_.max_tests) break;
        // Pool-pressure fault seam: stop expanding once the expression pool
        // exceeds the injected limit. The suite so far stays valid.
        if (config_.fault_pool_limit > 0 && pool_.size() > config_.fault_pool_limit) {
            break;
        }

        const auto [idx, bound] = work.front();
        work.pop_front();

        // Copy what we need up front: suite.tests may reallocate as children
        // are appended inside the loop.
        const core::PathCondition pc = suite.tests[idx].result.pc;
        const exec::Input parent_input = suite.tests[idx].input;
        const solver::Model seed = seed_model(pool_, method_, parent_input);

        const int limit =
            std::min<int>(static_cast<int>(pc.size()), config_.max_flip_depth);
        // Sibling flips share the path prefix p0..p_{j-1}, which only grows
        // with j — the incremental context keeps it loaded and each query
        // pushes/pops just the flipped predicate. The prefix is synced
        // lazily, so fully cache-served parents never touch the solver.
        if (config_.incremental) ctx_.clear();
        std::size_t synced = 0;
        for (int j = bound; j < limit; ++j) {
            if (stats_.solver_calls >= config_.max_solver_calls) break;
            if (static_cast<int>(suite.tests.size()) >= config_.max_tests) break;

            std::vector<const sym::Expr*> conjuncts;
            conjuncts.reserve(static_cast<std::size_t>(j) + 1);
            for (int k = 0; k < j; ++k) conjuncts.push_back(pc.preds[static_cast<std::size_t>(k)].expr);
            conjuncts.push_back(pool_.negate(pc.preds[static_cast<std::size_t>(j)].expr));

            const solver::SolveResult res =
                config_.incremental
                    ? solve_with_cache(conjuncts, &seed,
                                       [&] {
                                           while (synced < static_cast<std::size_t>(j)) {
                                               ctx_.push(pc.preds[synced].expr);
                                               ++synced;
                                           }
                                           ctx_.push(conjuncts.back());
                                           const solver::SolveResult r = ctx_.solve(&seed);
                                           ctx_.pop();
                                           return r;
                                       })
                    : solve_conjuncts(conjuncts, &seed);
            switch (res.status) {
                case solver::SolveStatus::Sat: ++stats_.sat; break;
                case solver::SolveStatus::Unsat: ++stats_.unsat; continue;
                case solver::SolveStatus::Unknown: ++stats_.unknown; continue;
            }
            exec::Input child = reconstruct_input(pool_, method_, res.model,
                                                  &parent_input,
                                                  config_.materialize_max_len);
            execute(std::move(child), j + 1);
        }
    }
    return suite;
}

std::optional<Test> Explorer::run_constrained(
    std::span<const sym::Expr* const> conjuncts, const exec::Input* base) {
    // On-demand oracles share max_solver_calls with the generational
    // search; once the budget is spent, refuse further witness queries
    // instead of silently blowing past the cap. The pool-pressure fault
    // seam refuses for the same reason: degrade, never crash.
    if (stats_.solver_calls >= config_.max_solver_calls) return std::nullopt;
    if (config_.fault_pool_limit > 0 && pool_.size() > config_.fault_pool_limit) {
        return std::nullopt;
    }
    std::optional<solver::Model> seed;
    if (base) seed = seed_model(pool_, method_, *base);
    const solver::SolveResult res =
        solve_conjuncts(conjuncts, seed ? &*seed : nullptr);
    if (!res.sat()) {
        if (res.status == solver::SolveStatus::Unsat) {
            ++stats_.unsat;
        } else {
            ++stats_.unknown;
        }
        return std::nullopt;
    }
    ++stats_.sat;
    Test t;
    t.id = next_test_id_++;
    t.input = reconstruct_input(pool_, method_, res.model, base,
                                config_.materialize_max_len);
    t.result = interp_->run(t.input);
    ++stats_.executions;
    return t;
}

}  // namespace preinfer::gen
