#include "src/gen/reconstruct.h"

#include <algorithm>

#include "src/support/diagnostics.h"

namespace preinfer::gen {

namespace {

using exec::ArgValue;
using exec::Input;
using exec::IntArrInput;
using exec::StrArrInput;
using exec::StrInput;
using solver::Model;
using sym::Expr;
using sym::Kind;
using sym::Sort;

/// Element facts the model states about one object term.
struct ObjFacts {
    bool has_any = false;          ///< the model mentions this object at all
    bool isnull_known = false;
    bool isnull = false;
    bool len_known = false;
    std::int64_t len = 0;
    std::int64_t max_index = -1;   ///< largest Select index mentioned
};

ObjFacts facts_for(const Model& model, sym::ExprPool& pool, const Expr* obj) {
    ObjFacts f;
    const Expr* isnull_term = pool.is_null(obj);
    if (auto it = model.values.find(isnull_term); it != model.values.end()) {
        f.has_any = true;
        f.isnull_known = true;
        f.isnull = it->second != 0;
    }
    const Expr* len_term = pool.len(obj);
    if (auto it = model.values.find(len_term); it != model.values.end()) {
        f.has_any = true;
        f.len_known = true;
        f.len = std::max<std::int64_t>(0, it->second);
    }
    for (const auto& [term, value] : model.values) {
        (void)value;
        // Select(obj, k) of either element sort, and observers of such
        // selects (Len/IsNull of a str[] element) all imply elements exist.
        const Expr* t = term;
        while (t->kind == Kind::Len || t->kind == Kind::IsNull) t = t->child0;
        if (t->kind == Kind::Select && t->child0 == obj &&
            t->child1->kind == Kind::IntConst) {
            f.has_any = true;
            f.max_index = std::max(f.max_index, t->child1->a);
        }
    }
    return f;
}

std::int64_t choose_len(const ObjFacts& f, std::int64_t base_len, std::int64_t max_len) {
    std::int64_t len = f.len_known ? f.len : base_len;
    len = std::max(len, f.max_index + 1);
    return std::clamp<std::int64_t>(len, 0, max_len);
}

StrInput build_str(const Model& model, sym::ExprPool& pool, const Expr* obj,
                   const StrInput* base, std::int64_t max_len) {
    const ObjFacts f = facts_for(model, pool, obj);
    const bool base_null = base == nullptr || base->is_null;
    const bool isnull = f.isnull_known ? f.isnull : (f.has_any ? false : base_null);
    if (isnull) return StrInput::null();

    StrInput out;
    out.is_null = false;
    const std::int64_t base_len =
        base_null ? 0 : static_cast<std::int64_t>(base->chars.size());
    const std::int64_t len = choose_len(f, base_len, max_len);
    out.chars.resize(static_cast<std::size_t>(len), 'a');
    for (std::int64_t k = 0; k < len; ++k) {
        std::int64_t v = (!base_null && k < base_len) ? base->chars[static_cast<std::size_t>(k)]
                                                      : 'a';
        const Expr* cell = pool.select(obj, pool.int_const(k), Sort::Int);
        v = model.get_int(cell, v);
        out.chars[static_cast<std::size_t>(k)] = v;
    }
    return out;
}

IntArrInput build_int_arr(const Model& model, sym::ExprPool& pool, const Expr* obj,
                          const IntArrInput* base, std::int64_t max_len) {
    const ObjFacts f = facts_for(model, pool, obj);
    const bool base_null = base == nullptr || base->is_null;
    const bool isnull = f.isnull_known ? f.isnull : (f.has_any ? false : base_null);
    if (isnull) return IntArrInput::null();

    IntArrInput out;
    out.is_null = false;
    const std::int64_t base_len =
        base_null ? 0 : static_cast<std::int64_t>(base->elems.size());
    const std::int64_t len = choose_len(f, base_len, max_len);
    out.elems.resize(static_cast<std::size_t>(len), 0);
    for (std::int64_t k = 0; k < len; ++k) {
        std::int64_t v =
            (!base_null && k < base_len) ? base->elems[static_cast<std::size_t>(k)] : 0;
        const Expr* cell = pool.select(obj, pool.int_const(k), Sort::Int);
        v = model.get_int(cell, v);
        out.elems[static_cast<std::size_t>(k)] = v;
    }
    return out;
}

StrArrInput build_str_arr(const Model& model, sym::ExprPool& pool, const Expr* obj,
                          const StrArrInput* base, std::int64_t max_len) {
    const ObjFacts f = facts_for(model, pool, obj);
    const bool base_null = base == nullptr || base->is_null;
    const bool isnull = f.isnull_known ? f.isnull : (f.has_any ? false : base_null);
    if (isnull) return StrArrInput::null();

    StrArrInput out;
    out.is_null = false;
    const std::int64_t base_len =
        base_null ? 0 : static_cast<std::int64_t>(base->elems.size());
    const std::int64_t len = choose_len(f, base_len, max_len);
    out.elems.resize(static_cast<std::size_t>(len));
    for (std::int64_t k = 0; k < len; ++k) {
        const StrInput* elem_base = (!base_null && k < base_len)
                                        ? &base->elems[static_cast<std::size_t>(k)]
                                        : nullptr;
        const Expr* elem = pool.select(obj, pool.int_const(k), Sort::Obj);
        const ObjFacts ef = facts_for(model, pool, elem);
        if (!ef.has_any && elem_base == nullptr) {
            // Nothing known and no parent value: default to a null element
            // (the interpreter will surface it as the interesting case).
            out.elems[static_cast<std::size_t>(k)] = StrInput::null();
        } else {
            out.elems[static_cast<std::size_t>(k)] =
                build_str(model, pool, elem, elem_base, max_len);
        }
    }
    return out;
}

void seed_str(Model& m, sym::ExprPool& pool, const Expr* obj, const StrInput& s) {
    m.values[pool.is_null(obj)] = s.is_null ? 1 : 0;
    if (s.is_null) return;
    m.values[pool.len(obj)] = static_cast<std::int64_t>(s.chars.size());
    for (std::size_t k = 0; k < s.chars.size(); ++k) {
        m.values[pool.select(obj, pool.int_const(static_cast<std::int64_t>(k)),
                             Sort::Int)] = s.chars[k];
    }
}

}  // namespace

exec::Input reconstruct_input(sym::ExprPool& pool, const lang::Method& method,
                              const solver::Model& model, const exec::Input* base,
                              std::int64_t max_len) {
    Input out;
    out.args.reserve(method.params.size());
    for (std::size_t i = 0; i < method.params.size(); ++i) {
        const int pi = static_cast<int>(i);
        const ArgValue* base_arg =
            (base && i < base->args.size()) ? &base->args[i] : nullptr;
        switch (method.params[i].type) {
            case lang::Type::Int: {
                const std::int64_t fallback =
                    base_arg ? std::get<std::int64_t>(*base_arg) : 0;
                out.args.emplace_back(
                    model.get_int(pool.param(pi, Sort::Int), fallback));
                break;
            }
            case lang::Type::Bool: {
                const bool fallback = base_arg ? std::get<bool>(*base_arg) : false;
                out.args.emplace_back(
                    model.get_bool(pool.param(pi, Sort::Bool), fallback));
                break;
            }
            case lang::Type::Str: {
                const StrInput* b = base_arg ? &std::get<StrInput>(*base_arg) : nullptr;
                out.args.emplace_back(
                    build_str(model, pool, pool.param(pi, Sort::Obj), b, max_len));
                break;
            }
            case lang::Type::IntArr: {
                const IntArrInput* b =
                    base_arg ? &std::get<IntArrInput>(*base_arg) : nullptr;
                out.args.emplace_back(
                    build_int_arr(model, pool, pool.param(pi, Sort::Obj), b, max_len));
                break;
            }
            case lang::Type::StrArr: {
                const StrArrInput* b =
                    base_arg ? &std::get<StrArrInput>(*base_arg) : nullptr;
                out.args.emplace_back(
                    build_str_arr(model, pool, pool.param(pi, Sort::Obj), b, max_len));
                break;
            }
            case lang::Type::Void:
                PI_CHECK(false, "void parameter");
        }
    }
    return out;
}

solver::Model seed_model(sym::ExprPool& pool, const lang::Method& method,
                         const exec::Input& input) {
    Model m;
    for (std::size_t i = 0; i < input.args.size(); ++i) {
        const int pi = static_cast<int>(i);
        const ArgValue& a = input.args[i];
        switch (method.params[i].type) {
            case lang::Type::Int:
                m.values[pool.param(pi, Sort::Int)] = std::get<std::int64_t>(a);
                break;
            case lang::Type::Bool:
                m.values[pool.param(pi, Sort::Bool)] = std::get<bool>(a) ? 1 : 0;
                break;
            case lang::Type::Str:
                seed_str(m, pool, pool.param(pi, Sort::Obj), std::get<StrInput>(a));
                break;
            case lang::Type::IntArr: {
                const auto& arr = std::get<IntArrInput>(a);
                const Expr* obj = pool.param(pi, Sort::Obj);
                m.values[pool.is_null(obj)] = arr.is_null ? 1 : 0;
                if (arr.is_null) break;
                m.values[pool.len(obj)] = static_cast<std::int64_t>(arr.elems.size());
                for (std::size_t k = 0; k < arr.elems.size(); ++k) {
                    m.values[pool.select(obj,
                                         pool.int_const(static_cast<std::int64_t>(k)),
                                         Sort::Int)] = arr.elems[k];
                }
                break;
            }
            case lang::Type::StrArr: {
                const auto& arr = std::get<StrArrInput>(a);
                const Expr* obj = pool.param(pi, Sort::Obj);
                m.values[pool.is_null(obj)] = arr.is_null ? 1 : 0;
                if (arr.is_null) break;
                m.values[pool.len(obj)] = static_cast<std::int64_t>(arr.elems.size());
                for (std::size_t k = 0; k < arr.elems.size(); ++k) {
                    const Expr* elem = pool.select(
                        obj, pool.int_const(static_cast<std::int64_t>(k)), Sort::Obj);
                    seed_str(m, pool, elem, arr.elems[k]);
                }
                break;
            }
            case lang::Type::Void:
                PI_CHECK(false, "void parameter");
        }
    }
    return m;
}

}  // namespace preinfer::gen
