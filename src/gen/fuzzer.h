#pragma once

#include <cstdint>
#include <random>

#include "src/exec/input.h"

namespace preinfer::gen {

/// Deterministic random entry-state generator. Used to widen validation
/// suites beyond what symbolic exploration found, so sufficiency/necessity
/// verdicts are not judged only on the paths the inference saw — the
/// paper's "test the strength of pred using Pex" methodology.
class Fuzzer {
public:
    Fuzzer(const lang::Method& method, std::uint64_t seed);

    [[nodiscard]] exec::Input next();

private:
    [[nodiscard]] std::int64_t small_int();
    [[nodiscard]] std::int64_t char_value();
    [[nodiscard]] exec::StrInput random_str(double null_probability);

    const lang::Method& method_;
    std::mt19937_64 rng_;
};

}  // namespace preinfer::gen
