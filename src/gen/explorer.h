#pragma once

#include <optional>
#include <span>

#include "src/exec/executor.h"
#include "src/gen/testsuite.h"
#include "src/solver/solve_cache.h"
#include "src/solver/solver.h"

namespace preinfer::gen {

/// Budgets and knobs for one exploration (one method).
struct ExplorerConfig {
    int max_tests = 256;          ///< executed inputs kept in the suite
    int max_solver_calls = 4096;  ///< path-constraint flips attempted
    int max_flip_depth = 160;     ///< only flip the first N predicates of a path
    /// Which concolic execution backend replays inputs. Both backends emit
    /// byte-identical path conditions (docs/IL.md); the AST walker exists
    /// for differential checking and costs ~2x per execution.
    exec::Backend backend = exec::Backend::IL;
    exec::ExecLimits exec_limits{};
    solver::SolverConfig solver_config{};
    std::int64_t materialize_max_len = 16;  ///< largest reconstructed collection
    bool extra_seeds = true;  ///< start from a few canonical non-null inputs too
    /// Solve sibling flips of one parent path through an incremental
    /// solver context that keeps the shared prefix loaded, instead of
    /// reloading it per query. Results are bit-for-bit identical either
    /// way (the off position exists for equivalence testing).
    bool incremental = true;
    /// Fault-injection seam (docs/FUZZING.md): when >= 0, every solver
    /// query beyond this many budget-charged calls answers Unknown without
    /// searching — the mid-run starvation the differential fuzzer uses to
    /// prove the pipeline degrades gracefully. The threshold counts
    /// *charged* queries (real solves plus semantic cache answers), the
    /// same quantity max_solver_calls bounds, so the trip point is
    /// invariant across the cache's semantic options.
    int fault_solver_unknown_after = -1;
    /// Fault-injection seam: when > 0, exploration stops expanding (and
    /// run_constrained refuses witness queries) once the expression pool
    /// holds more than this many nodes — simulated allocator pressure.
    std::size_t fault_pool_limit = 0;
};

/// Pex-style generational-search test generator: run a seed input
/// concolically, then repeatedly pick an executed path, negate one of its
/// branch predicates, solve prefix ∧ ¬predicate for a new input (seeded with
/// the parent's values so the child stays nearby), and execute it. Children
/// only flip predicates at or beyond their generation bound, which prevents
/// re-deriving ancestors. Paths and inputs are deduplicated.
class Explorer {
public:
    /// `cache`, when given, memoizes solver queries across this explorer and
    /// any other explorer sharing the same pool and solver config (the
    /// harness shares one cache per (worker, method)); pass nullptr to solve
    /// every query. `index`, when given, shares atom-normalization records
    /// across every solver on the same pool — unlike the cache it is safe
    /// to share between differing solver configs. Both must outlive the
    /// explorer.
    Explorer(sym::ExprPool& pool, const lang::Method& method, ExplorerConfig config = {},
             const lang::Program* program = nullptr,
             solver::SolveCache* cache = nullptr,
             solver::AtomIndex* index = nullptr);

    /// Runs the generational search until budgets are exhausted.
    [[nodiscard]] TestSuite explore();

    /// Solves an arbitrary conjunction of path predicates and, when
    /// satisfiable, executes the resulting input. This is the on-demand
    /// entry point the solver-assisted pruning oracle uses. The returned
    /// test is not part of any suite. `base` (optional) seeds the solver
    /// and fills unconstrained parts of the input.
    [[nodiscard]] std::optional<Test> run_constrained(
        std::span<const sym::Expr* const> conjuncts, const exec::Input* base);

    struct Stats {
        int executions = 0;
        /// Budget-charged queries, the quantity max_solver_calls bounds:
        /// actual Solver::solve invocations plus semantic cache answers
        /// (model reuse, unsat subsumption), which substitute for a solve.
        /// Charging the semantic answers keeps the exploration trajectory
        /// identical whether or not those fast paths are enabled; exact-key
        /// hits stay free.
        int solver_calls = 0;
        /// Query outcomes, counted for hits and misses alike; with a cache
        /// attached sat + unsat + unknown can exceed solver_calls.
        int sat = 0;
        int unsat = 0;
        int unknown = 0;
        int duplicate_inputs = 0;
        int duplicate_paths = 0;
        /// Memoized-solver accounting; all stay 0 without a cache.
        /// cache_hits counts exact-key hits only; the two semantic paths
        /// (witness reuse from recent models, Unsat by subsumed key) are
        /// counted separately. cache_misses counts only lookups that fell
        /// through to a real solve.
        int cache_hits = 0;
        int cache_misses = 0;
        int cache_model_reuse = 0;
        int cache_unsat_subsumed = 0;
        /// Abstract pre-pass discharges (SolverConfig::abstract_prepass):
        /// budget-charged Solver::solve invocations the root-node interval
        /// propagation answered without any branching. Statuses and models
        /// are bit-identical to what the search would return, so these
        /// split solver_calls for perf accounting only (they are excluded
        /// from the solver.solve_us histogram, like semantic cache
        /// answers); both stay 0 when the pre-pass is off.
        int prepass_unsat = 0;
        int prepass_sat = 0;
        /// Persistent-tier answers (disk_cache.h). A disk hit replaces the
        /// Solver::solve call the query would otherwise have made and is
        /// budget-charged like one, so trajectories are tier-invariant;
        /// disk_misses counts queries that reached the tier and fell
        /// through to a real solve. Both stay 0 without an attached tier.
        int disk_hits = 0;
        int disk_misses = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    [[nodiscard]] std::vector<exec::Input> seed_inputs() const;

    /// Cache-aware solver entry point: consults the memoization cache (when
    /// attached) before paying for a Solver::solve call.
    [[nodiscard]] solver::SolveResult solve_conjuncts(
        std::span<const sym::Expr* const> conjuncts, const solver::Model* seed);

    /// Shared cache-then-solve skeleton: lookup, stats, tracing, insert;
    /// `solve` runs only on a miss (from scratch or via ctx_). `seed` is
    /// the seed model `solve` will search under — the persistent tier keys
    /// on it, and recorded results are filed under it.
    template <typename SolveFn>
    [[nodiscard]] solver::SolveResult solve_with_cache(
        std::span<const sym::Expr* const> conjuncts, const solver::Model* seed,
        SolveFn&& solve);

    sym::ExprPool& pool_;
    const lang::Method& method_;
    ExplorerConfig config_;
    std::unique_ptr<exec::Executor> interp_;
    solver::Solver solver_;
    /// Incremental conjunction reused across one parent path's flips.
    solver::Solver::Context ctx_;
    solver::SolveCache* cache_ = nullptr;
    Stats stats_;
    int next_test_id_ = 0;
};

}  // namespace preinfer::gen
