#pragma once

#include <optional>
#include <span>

#include "src/exec/concolic.h"
#include "src/gen/testsuite.h"
#include "src/solver/solve_cache.h"
#include "src/solver/solver.h"

namespace preinfer::gen {

/// Budgets and knobs for one exploration (one method).
struct ExplorerConfig {
    int max_tests = 256;          ///< executed inputs kept in the suite
    int max_solver_calls = 4096;  ///< path-constraint flips attempted
    int max_flip_depth = 160;     ///< only flip the first N predicates of a path
    exec::ExecLimits exec_limits{};
    solver::SolverConfig solver_config{};
    std::int64_t materialize_max_len = 16;  ///< largest reconstructed collection
    bool extra_seeds = true;  ///< start from a few canonical non-null inputs too
};

/// Pex-style generational-search test generator: run a seed input
/// concolically, then repeatedly pick an executed path, negate one of its
/// branch predicates, solve prefix ∧ ¬predicate for a new input (seeded with
/// the parent's values so the child stays nearby), and execute it. Children
/// only flip predicates at or beyond their generation bound, which prevents
/// re-deriving ancestors. Paths and inputs are deduplicated.
class Explorer {
public:
    /// `cache`, when given, memoizes solver queries across this explorer and
    /// any other explorer sharing the same pool and solver config (the
    /// harness shares one cache per (worker, method)); pass nullptr to solve
    /// every query. The cache must outlive the explorer.
    Explorer(sym::ExprPool& pool, const lang::Method& method, ExplorerConfig config = {},
             const lang::Program* program = nullptr,
             solver::SolveCache* cache = nullptr);

    /// Runs the generational search until budgets are exhausted.
    [[nodiscard]] TestSuite explore();

    /// Solves an arbitrary conjunction of path predicates and, when
    /// satisfiable, executes the resulting input. This is the on-demand
    /// entry point the solver-assisted pruning oracle uses. The returned
    /// test is not part of any suite. `base` (optional) seeds the solver
    /// and fills unconstrained parts of the input.
    [[nodiscard]] std::optional<Test> run_constrained(
        std::span<const sym::Expr* const> conjuncts, const exec::Input* base);

    struct Stats {
        int executions = 0;
        /// Actual Solver::solve invocations (cache hits excluded), the
        /// quantity max_solver_calls budgets.
        int solver_calls = 0;
        /// Query outcomes, counted for hits and misses alike; with a cache
        /// attached sat + unsat + unknown can exceed solver_calls.
        int sat = 0;
        int unsat = 0;
        int unknown = 0;
        int duplicate_inputs = 0;
        int duplicate_paths = 0;
        /// Memoized-solver accounting; both stay 0 without a cache.
        int cache_hits = 0;
        int cache_misses = 0;
    };
    [[nodiscard]] const Stats& stats() const { return stats_; }

private:
    [[nodiscard]] std::vector<exec::Input> seed_inputs() const;

    /// Cache-aware solver entry point: consults the memoization cache (when
    /// attached) before paying for a Solver::solve call.
    [[nodiscard]] solver::SolveResult solve_conjuncts(
        std::span<const sym::Expr* const> conjuncts, const solver::Model* seed);

    sym::ExprPool& pool_;
    const lang::Method& method_;
    ExplorerConfig config_;
    exec::ConcolicInterpreter interp_;
    solver::Solver solver_;
    solver::SolveCache* cache_ = nullptr;
    Stats stats_;
    int next_test_id_ = 0;
};

}  // namespace preinfer::gen
