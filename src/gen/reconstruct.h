#pragma once

#include "src/exec/input.h"
#include "src/solver/model.h"
#include "src/sym/expr_pool.h"

namespace preinfer::gen {

/// Builds a concrete method-entry state from a solver model. Terms the
/// model does not mention keep their value from `base` (typically the
/// parent test of a generational-search flip), so the new input deviates
/// from its parent only where the constraints demand. `base == nullptr`
/// falls back to the all-default input.
///
/// Collection sizes: the materialized length is the model's Len value when
/// present, otherwise grown just enough to cover the mentioned element
/// indices (clamped to `max_len`).
[[nodiscard]] exec::Input reconstruct_input(sym::ExprPool& pool,
                                            const lang::Method& method,
                                            const solver::Model& model,
                                            const exec::Input* base,
                                            std::int64_t max_len = 4096);

/// The inverse direction: a model holding the value of every ground term
/// (Param / IsNull / Len / Select chains) of `input`. Used to seed the
/// solver so flipped children stay close to their parent.
[[nodiscard]] solver::Model seed_model(sym::ExprPool& pool, const lang::Method& method,
                                       const exec::Input& input);

}  // namespace preinfer::gen
