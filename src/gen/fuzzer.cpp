#include "src/gen/fuzzer.h"

#include "src/support/diagnostics.h"

namespace preinfer::gen {

namespace {

constexpr std::int64_t kIntPool[] = {0, 1, -1, 2, 3, -2, 4, 5, -5, 7, 100, -100, 1000};
constexpr std::int64_t kCharPool[] = {'a', 'b', 'c', ' ', '\t', '\n', '0', 'z', 'A'};

}  // namespace

Fuzzer::Fuzzer(const lang::Method& method, std::uint64_t seed)
    : method_(method), rng_(seed) {}

std::int64_t Fuzzer::small_int() {
    return kIntPool[rng_() % std::size(kIntPool)];
}

std::int64_t Fuzzer::char_value() {
    return kCharPool[rng_() % std::size(kCharPool)];
}

exec::StrInput Fuzzer::random_str(double null_probability) {
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    if (coin(rng_) < null_probability) return exec::StrInput::null();
    exec::StrInput s;
    s.is_null = false;
    // Occasionally emit a long homogeneous string (all spaces, all zeros,
    // all 'a'): quantified preconditions are exactly about such inputs, and
    // uniform random sampling essentially never produces them, which would
    // let per-length disjunctions masquerade as sufficient.
    if (coin(rng_) < 0.2) {
        const std::int64_t c = kCharPool[rng_() % std::size(kCharPool)];
        const std::size_t len = 6 + rng_() % 7;
        s.chars.assign(len, c);
        return s;
    }
    const std::size_t len = rng_() % 6;
    s.chars.reserve(len);
    for (std::size_t i = 0; i < len; ++i) s.chars.push_back(char_value());
    return s;
}

exec::Input Fuzzer::next() {
    exec::Input in;
    std::uniform_real_distribution<double> coin(0.0, 1.0);
    for (const lang::Param& p : method_.params) {
        switch (p.type) {
            case lang::Type::Int:
                in.args.emplace_back(small_int());
                break;
            case lang::Type::Bool:
                in.args.emplace_back((rng_() & 1) == 0);
                break;
            case lang::Type::Str:
                in.args.emplace_back(random_str(0.25));
                break;
            case lang::Type::IntArr: {
                if (coin(rng_) < 0.2) {
                    in.args.emplace_back(exec::IntArrInput::null());
                    break;
                }
                exec::IntArrInput a;
                a.is_null = false;
                if (coin(rng_) < 0.25) {
                    // Long homogeneous arrays (see random_str), sometimes
                    // with one mutated position near the end — the inputs
                    // that expose per-length disjunctions pretending to be
                    // quantified conditions.
                    const std::int64_t v = static_cast<std::int64_t>(rng_() % 3);
                    a.elems.assign(6 + rng_() % 7, v);
                    if ((rng_() & 1) == 0) {
                        a.elems[a.elems.size() - 1 - rng_() % 2] = v - 1;
                    }
                } else {
                    const std::size_t len = rng_() % 6;
                    for (std::size_t i = 0; i < len; ++i) a.elems.push_back(small_int());
                }
                in.args.emplace_back(std::move(a));
                break;
            }
            case lang::Type::StrArr: {
                if (coin(rng_) < 0.2) {
                    in.args.emplace_back(exec::StrArrInput::null());
                    break;
                }
                exec::StrArrInput a;
                a.is_null = false;
                if (coin(rng_) < 0.15) {
                    // All-null / all-"a" element runs.
                    const bool nulls = (rng_() & 1) == 0;
                    const std::size_t len = 5 + rng_() % 6;
                    for (std::size_t i = 0; i < len; ++i) {
                        a.elems.push_back(nulls ? exec::StrInput::null()
                                                : exec::StrInput::of("a"));
                    }
                } else {
                    const std::size_t len = rng_() % 5;
                    for (std::size_t i = 0; i < len; ++i)
                        a.elems.push_back(random_str(0.3));
                }
                in.args.emplace_back(std::move(a));
                break;
            }
            case lang::Type::Void:
                PI_CHECK(false, "void parameter");
        }
    }
    return in;
}

}  // namespace preinfer::gen
