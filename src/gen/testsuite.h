#pragma once

#include <vector>

#include "src/exec/input.h"
#include "src/exec/outcome.h"

namespace preinfer::gen {

/// A generated test: an entry state together with its observed execution.
struct Test {
    int id = -1;
    exec::Input input;
    exec::RunResult result;

    [[nodiscard]] bool usable() const {
        return result.outcome.tag != exec::Outcome::Tag::Exhausted;
    }
};

/// All tests generated for one method.
struct TestSuite {
    std::vector<Test> tests;

    /// Distinct assertion-containing locations observed to fail.
    [[nodiscard]] std::vector<core::AclId> failing_acls() const;

    /// Fraction of the method's basic blocks covered by usable tests.
    [[nodiscard]] double block_coverage(int num_blocks) const;
};

/// Per-ACL partition of a suite (Section V-B): T_fail(e) holds the tests
/// aborting at e; T_pass(e) holds every other usable test — tests that never
/// reach e, reach it without violating, or abort at a *different* location
/// (they never reach e either).
struct AclView {
    core::AclId acl;
    std::vector<const Test*> failing;
    std::vector<const Test*> passing;

    [[nodiscard]] std::vector<const core::PathCondition*> failing_pcs() const;
    [[nodiscard]] std::vector<const core::PathCondition*> passing_pcs() const;
};

[[nodiscard]] AclView view_for(const TestSuite& suite, core::AclId acl);

}  // namespace preinfer::gen
