#include "src/gen/testsuite.h"

#include <algorithm>
#include <unordered_set>

namespace preinfer::gen {

std::vector<core::AclId> TestSuite::failing_acls() const {
    std::vector<core::AclId> out;
    std::unordered_set<core::AclId, core::AclIdHash> seen;
    for (const Test& t : tests) {
        if (t.result.outcome.failing() && seen.insert(t.result.outcome.acl).second)
            out.push_back(t.result.outcome.acl);
    }
    // Deterministic order: by node id, then kind.
    std::sort(out.begin(), out.end(), [](const core::AclId& a, const core::AclId& b) {
        if (a.node_id != b.node_id) return a.node_id < b.node_id;
        return static_cast<int>(a.kind) < static_cast<int>(b.kind);
    });
    return out;
}

double TestSuite::block_coverage(int num_blocks) const {
    if (num_blocks <= 0) return 1.0;
    std::vector<bool> covered(static_cast<std::size_t>(num_blocks), false);
    for (const Test& t : tests) {
        if (!t.usable()) continue;
        for (std::size_t b = 0; b < t.result.covered_blocks.size() && b < covered.size();
             ++b) {
            if (t.result.covered_blocks[b]) covered[b] = true;
        }
    }
    const auto hit = std::count(covered.begin(), covered.end(), true);
    return static_cast<double>(hit) / static_cast<double>(num_blocks);
}

AclView view_for(const TestSuite& suite, core::AclId acl) {
    AclView view;
    view.acl = acl;
    for (const Test& t : suite.tests) {
        if (!t.usable()) continue;
        if (t.result.outcome.failing() && t.result.outcome.acl == acl) {
            view.failing.push_back(&t);
        } else {
            view.passing.push_back(&t);
        }
    }
    return view;
}

std::vector<const core::PathCondition*> AclView::failing_pcs() const {
    std::vector<const core::PathCondition*> out;
    out.reserve(failing.size());
    for (const Test* t : failing) out.push_back(&t->result.pc);
    return out;
}

std::vector<const core::PathCondition*> AclView::passing_pcs() const {
    std::vector<const core::PathCondition*> out;
    out.reserve(passing.size());
    for (const Test* t : passing) out.push_back(&t->result.pc);
    return out;
}

}  // namespace preinfer::gen
