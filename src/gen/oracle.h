#pragma once

#include <deque>

#include "src/core/pruning.h"
#include "src/gen/explorer.h"

namespace preinfer::gen {

/// Adapts an Explorer into the pruning stage's on-demand witness generator
/// (core::WitnessOracle): solve the conjunction, execute the model, hand
/// back the resulting path condition. Witness executions are owned by the
/// oracle so their path conditions outlive the call.
class ExplorerOracle final : public core::WitnessOracle {
public:
    explicit ExplorerOracle(Explorer& explorer) : explorer_(explorer) {}

    std::optional<Witness> witness(
        std::span<const sym::Expr* const> conjuncts) override;

    [[nodiscard]] int calls() const { return calls_; }

private:
    Explorer& explorer_;
    std::deque<Test> store_;
    int calls_ = 0;
};

}  // namespace preinfer::gen
