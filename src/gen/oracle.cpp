#include "src/gen/oracle.h"

namespace preinfer::gen {

std::optional<core::WitnessOracle::Witness> ExplorerOracle::witness(
    std::span<const sym::Expr* const> conjuncts) {
    ++calls_;
    auto t = explorer_.run_constrained(conjuncts, nullptr);
    if (!t || !t->usable()) return std::nullopt;
    store_.push_back(std::move(*t));
    const Test& kept = store_.back();
    Witness w;
    w.pc = &kept.result.pc;
    w.failing = kept.result.outcome.failing();
    if (w.failing) w.acl = kept.result.outcome.acl;
    return w;
}

}  // namespace preinfer::gen
