#include "src/baselines/dysy.h"

#include "src/core/simplify.h"

namespace preinfer::baselines {

DySyResult dysy_infer(sym::ExprPool& pool,
                      std::span<const core::PathCondition* const> passing) {
    DySyResult result;
    if (passing.empty()) return result;

    std::vector<core::PredPtr> disjuncts;
    disjuncts.reserve(passing.size());
    for (const core::PathCondition* pc : passing) {
        std::vector<core::PredPtr> conj;
        conj.reserve(pc->preds.size());
        for (const core::PathPredicate& p : pc->preds) {
            conj.push_back(core::make_atom(p.expr));
        }
        disjuncts.push_back(core::make_and(std::move(conj)));
    }

    result.precondition = core::simplify(pool, core::make_or(std::move(disjuncts)));
    result.inferred = true;
    return result;
}

}  // namespace preinfer::baselines
