#include "src/baselines/fixit.h"

#include "src/core/simplify.h"

namespace preinfer::baselines {

FixItResult fixit_infer(sym::ExprPool& pool,
                        std::span<const core::PathCondition* const> failing) {
    FixItResult result;
    if (failing.empty()) return result;

    std::vector<core::PredPtr> disjuncts;
    for (const core::PathCondition* pc : failing) {
        if (pc->empty()) continue;
        disjuncts.push_back(core::make_atom(pc->last().expr));
    }
    if (disjuncts.empty()) return result;

    result.alpha = core::simplify(pool, core::make_or(std::move(disjuncts)));
    result.precondition = core::simplify(pool, core::negate(pool, result.alpha));
    result.inferred = true;
    return result;
}

}  // namespace preinfer::baselines
