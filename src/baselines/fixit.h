#pragma once

#include "src/core/path_condition.h"
#include "src/core/pred.h"

namespace preinfer::baselines {

/// The FixIt baseline (as characterized in the paper's evaluation): "FixIt
/// uses only the last-branch predicate to form a precondition. FixIt does
/// not infer a precondition from multiple branch conditions and has no
/// notion of a quantifier."
///
/// α = ⋁ last-branch predicates of the failing paths (deduplicated);
/// precondition = ¬α. Tends to be merely necessary (it cannot express
/// reachability constraints) and handles zero collection-element cases.
struct FixItResult {
    bool inferred = false;
    core::PredPtr alpha;
    core::PredPtr precondition;
};

[[nodiscard]] FixItResult fixit_infer(
    sym::ExprPool& pool, std::span<const core::PathCondition* const> failing);

}  // namespace preinfer::baselines
