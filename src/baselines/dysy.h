#pragma once

#include "src/core/path_condition.h"
#include "src/core/pred.h"

namespace preinfer::baselines {

/// The DySy baseline (Csallner et al., as characterized in the paper):
/// symbolic-execution-derived preconditions with no predicate pruning and
/// no quantifiers. The inferred precondition is the disjunction of the
/// *full* passing path conditions — it validates exactly the passing
/// behaviours that were observed. It therefore blocks every failing test
/// (their path conditions are disjoint from all passing ones), works even
/// when no failing run exists, but generalizes poorly: unobserved passing
/// paths are blocked, and the formula's complexity grows with every path.
struct DySyResult {
    bool inferred = false;
    core::PredPtr precondition;
};

[[nodiscard]] DySyResult dysy_infer(
    sym::ExprPool& pool, std::span<const core::PathCondition* const> passing);

}  // namespace preinfer::baselines
