#pragma once

#include "src/lang/ast.h"

namespace preinfer::lang {

/// Type-checks every method of the program, filling in ExprNode::type
/// annotations in place. Throws support::FrontendError on the first error.
///
/// Rules (C#-like):
///  - arithmetic and ordering comparisons over int;
///  - `==`/`!=` over int, over bool, and between a reference (str / int[] /
///    str[]) and `null` (or another reference of the same type);
///  - `&&`, `||`, `!` over bool (short-circuit semantics at runtime);
///  - `a[i]` and `.len` over str / int[] / str[]; element writes allowed for
///    int[] and str[] (str is immutable, like C# string);
///  - builtins: `iswhitespace(int) : bool`, `newintarray(int) : int[]`,
///    `newstrarray(int) : str[]`.
void type_check(Program& program);

/// Type-checks a single method (used by unit tests).
void type_check_method(Method& method);

}  // namespace preinfer::lang
