#include "src/lang/parser.h"

#include "src/lang/lexer.h"
#include "src/support/diagnostics.h"

namespace preinfer::lang {

namespace {

class Parser {
public:
    explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

    Program parse_unit() {
        Program prog;
        while (!at(TokKind::End)) {
            prog.methods.push_back(parse_method());
        }
        return prog;
    }

private:
    // --- token plumbing ---------------------------------------------------
    [[nodiscard]] const Token& peek(std::size_t ahead = 0) const {
        const std::size_t i = pos_ + ahead;
        return i < tokens_.size() ? tokens_[i] : tokens_.back();
    }
    [[nodiscard]] bool at(TokKind k) const { return peek().kind == k; }
    const Token& advance() { return tokens_[pos_ < tokens_.size() - 1 ? pos_++ : pos_]; }
    bool accept(TokKind k) {
        if (!at(k)) return false;
        advance();
        return true;
    }
    const Token& expect(TokKind k, const char* context) {
        if (!at(k)) {
            throw support::FrontendError(std::string("expected ") + tok_kind_name(k) +
                                             " in " + context + ", found " +
                                             tok_kind_name(peek().kind),
                                         peek().loc);
        }
        return advance();
    }

    [[noreturn]] void fail(const std::string& message) const {
        throw support::FrontendError(message, peek().loc);
    }

    int fresh_id() { return next_id_++; }

    ExprPtr make_expr(EKind kind, support::SourceLoc loc) {
        auto e = std::make_unique<ExprNode>();
        e->kind = kind;
        e->node_id = fresh_id();
        e->loc = loc;
        return e;
    }

    StmtPtr make_stmt(SKind kind, support::SourceLoc loc) {
        auto s = std::make_unique<StmtNode>();
        s->kind = kind;
        s->node_id = fresh_id();
        s->loc = loc;
        return s;
    }

    // --- declarations -----------------------------------------------------
    Method parse_method() {
        // Node ids keep counting across methods so that ids (and thus
        // assertion-location identities) are unique program-wide.
        const int first_id = next_id_;
        expect(TokKind::KwMethod, "method declaration");
        Method m;
        m.first_node_id = first_id;
        m.name = expect(TokKind::Ident, "method name").text;
        expect(TokKind::LParen, "parameter list");
        if (!at(TokKind::RParen)) {
            do {
                Param p;
                p.name = expect(TokKind::Ident, "parameter name").text;
                expect(TokKind::Colon, "parameter type");
                p.type = parse_type();
                m.params.push_back(std::move(p));
            } while (accept(TokKind::Comma));
        }
        expect(TokKind::RParen, "parameter list");
        if (accept(TokKind::Colon)) {
            m.ret = parse_type(/*allow_void=*/true);
        }
        m.body = parse_block();
        m.num_nodes = next_id_ - first_id;
        return m;
    }

    Type parse_type(bool allow_void = false) {
        const Token& t = advance();
        Type base;
        switch (t.kind) {
            case TokKind::KwInt: base = Type::Int; break;
            case TokKind::KwBool: base = Type::Bool; break;
            case TokKind::KwStr: base = Type::Str; break;
            case TokKind::KwVoid:
                if (!allow_void)
                    throw support::FrontendError("'void' only allowed as return type", t.loc);
                return Type::Void;
            default:
                throw support::FrontendError(
                    std::string("expected a type, found ") + tok_kind_name(t.kind), t.loc);
        }
        if (accept(TokKind::LBracket)) {
            expect(TokKind::RBracket, "array type");
            switch (base) {
                case Type::Int: return Type::IntArr;
                case Type::Str: return Type::StrArr;
                default:
                    throw support::FrontendError("only int[] and str[] array types exist", t.loc);
            }
        }
        return base;
    }

    // --- statements -------------------------------------------------------
    std::vector<StmtPtr> parse_block() {
        expect(TokKind::LBrace, "block");
        std::vector<StmtPtr> stmts;
        while (!at(TokKind::RBrace)) {
            if (at(TokKind::End)) fail("unterminated block");
            stmts.push_back(parse_stmt());
        }
        expect(TokKind::RBrace, "block");
        return stmts;
    }

    StmtPtr parse_stmt() {
        switch (peek().kind) {
            case TokKind::KwVar: return parse_var_decl();
            case TokKind::KwIf: return parse_if();
            case TokKind::KwWhile: return parse_while();
            case TokKind::KwFor: return parse_for();
            case TokKind::KwReturn: return parse_return();
            case TokKind::KwAssert: return parse_assert();
            case TokKind::KwBreak: {
                const support::SourceLoc loc = advance().loc;
                StmtPtr s = make_stmt(SKind::Break, loc);
                expect(TokKind::Semi, "break statement");
                return s;
            }
            case TokKind::KwContinue: {
                const support::SourceLoc loc = advance().loc;
                StmtPtr s = make_stmt(SKind::Continue, loc);
                expect(TokKind::Semi, "continue statement");
                return s;
            }
            case TokKind::LBrace: {
                StmtPtr s = make_stmt(SKind::Block, peek().loc);
                s->body = parse_block();
                return s;
            }
            case TokKind::Ident: return parse_assign();
            default:
                fail(std::string("expected a statement, found ") + tok_kind_name(peek().kind));
        }
    }

    StmtPtr parse_var_decl() {
        const support::SourceLoc loc = peek().loc;
        expect(TokKind::KwVar, "variable declaration");
        StmtPtr s = make_stmt(SKind::VarDecl, loc);
        s->name = expect(TokKind::Ident, "variable declaration").text;
        expect(TokKind::Assign, "variable declaration");
        s->expr = parse_expr();
        expect(TokKind::Semi, "variable declaration");
        return s;
    }

    /// `x = e;` or `a[i] = e;`
    StmtPtr parse_assign_no_semi() {
        const support::SourceLoc loc = peek().loc;
        StmtPtr s = make_stmt(SKind::Assign, loc);
        s->name = expect(TokKind::Ident, "assignment").text;
        if (accept(TokKind::LBracket)) {
            s->index = parse_expr();
            expect(TokKind::RBracket, "assignment subscript");
        }
        expect(TokKind::Assign, "assignment");
        s->expr = parse_expr();
        return s;
    }

    StmtPtr parse_assign() {
        StmtPtr s = parse_assign_no_semi();
        expect(TokKind::Semi, "assignment");
        return s;
    }

    StmtPtr parse_if() {
        const support::SourceLoc loc = peek().loc;
        expect(TokKind::KwIf, "if statement");
        StmtPtr s = make_stmt(SKind::If, loc);
        expect(TokKind::LParen, "if condition");
        s->expr = parse_expr();
        expect(TokKind::RParen, "if condition");
        s->body = parse_block();
        if (accept(TokKind::KwElse)) {
            if (at(TokKind::KwIf)) {
                s->else_body.push_back(parse_if());
            } else {
                s->else_body = parse_block();
            }
        }
        return s;
    }

    StmtPtr parse_while() {
        const support::SourceLoc loc = peek().loc;
        expect(TokKind::KwWhile, "while statement");
        StmtPtr s = make_stmt(SKind::While, loc);
        expect(TokKind::LParen, "while condition");
        s->expr = parse_expr();
        expect(TokKind::RParen, "while condition");
        s->body = parse_block();
        return s;
    }

    /// `for (init; cond; step) body` desugars into
    /// `{ init; while (cond) step-after-iteration { body } }` — the loop
    /// node carries the step so `continue` still increments (the branch
    /// structure Pex sees after compilation). The init may be omitted:
    /// `for (; cond; step)`.
    StmtPtr parse_for() {
        const support::SourceLoc loc = peek().loc;
        expect(TokKind::KwFor, "for statement");
        expect(TokKind::LParen, "for header");

        StmtPtr init;
        if (at(TokKind::KwVar)) {
            init = make_stmt(SKind::VarDecl, peek().loc);
            advance();
            init->name = expect(TokKind::Ident, "for initializer").text;
            expect(TokKind::Assign, "for initializer");
            init->expr = parse_expr();
        } else if (!at(TokKind::Semi)) {
            init = parse_assign_no_semi_for_header();
        }
        expect(TokKind::Semi, "for header");

        StmtPtr loop = make_stmt(SKind::While, loc);
        loop->expr = parse_expr();
        expect(TokKind::Semi, "for header");

        loop->step = parse_assign_no_semi_for_header();
        expect(TokKind::RParen, "for header");
        loop->body = parse_block();

        if (!init) return loop;
        StmtPtr outer = make_stmt(SKind::Block, loc);
        outer->body.push_back(std::move(init));
        outer->body.push_back(std::move(loop));
        return outer;
    }

    StmtPtr parse_assign_no_semi_for_header() {
        if (!at(TokKind::Ident)) fail("expected assignment in for header");
        return parse_assign_no_semi();
    }

    StmtPtr parse_return() {
        const support::SourceLoc loc = peek().loc;
        expect(TokKind::KwReturn, "return statement");
        StmtPtr s = make_stmt(SKind::Return, loc);
        if (!at(TokKind::Semi)) s->expr = parse_expr();
        expect(TokKind::Semi, "return statement");
        return s;
    }

    StmtPtr parse_assert() {
        const support::SourceLoc loc = peek().loc;
        expect(TokKind::KwAssert, "assert statement");
        StmtPtr s = make_stmt(SKind::Assert, loc);
        expect(TokKind::LParen, "assert statement");
        s->expr = parse_expr();
        expect(TokKind::RParen, "assert statement");
        expect(TokKind::Semi, "assert statement");
        return s;
    }

    // --- expressions (precedence climbing) ---------------------------------
    ExprPtr parse_expr() { return parse_or(); }

    ExprPtr binary(BinOp op, support::SourceLoc loc, ExprPtr lhs, ExprPtr rhs) {
        ExprPtr e = make_expr(EKind::Binary, loc);
        e->bin = op;
        e->lhs = std::move(lhs);
        e->rhs = std::move(rhs);
        return e;
    }

    ExprPtr parse_or() {
        ExprPtr lhs = parse_and();
        while (at(TokKind::PipePipe)) {
            const support::SourceLoc loc = advance().loc;
            lhs = binary(BinOp::Or, loc, std::move(lhs), parse_and());
        }
        return lhs;
    }

    ExprPtr parse_and() {
        ExprPtr lhs = parse_not();
        while (at(TokKind::AmpAmp)) {
            const support::SourceLoc loc = advance().loc;
            lhs = binary(BinOp::And, loc, std::move(lhs), parse_not());
        }
        return lhs;
    }

    ExprPtr parse_not() {
        if (at(TokKind::Bang)) {
            const support::SourceLoc loc = advance().loc;
            ExprPtr e = make_expr(EKind::Unary, loc);
            e->un = UnOp::Not;
            e->lhs = parse_not();
            return e;
        }
        return parse_cmp();
    }

    ExprPtr parse_cmp() {
        ExprPtr lhs = parse_add();
        BinOp op;
        switch (peek().kind) {
            case TokKind::EqEq: op = BinOp::Eq; break;
            case TokKind::BangEq: op = BinOp::Ne; break;
            case TokKind::Lt: op = BinOp::Lt; break;
            case TokKind::Le: op = BinOp::Le; break;
            case TokKind::Gt: op = BinOp::Gt; break;
            case TokKind::Ge: op = BinOp::Ge; break;
            default: return lhs;
        }
        const support::SourceLoc loc = advance().loc;
        return binary(op, loc, std::move(lhs), parse_add());
    }

    ExprPtr parse_add() {
        ExprPtr lhs = parse_mul();
        while (at(TokKind::Plus) || at(TokKind::Minus)) {
            const BinOp op = at(TokKind::Plus) ? BinOp::Add : BinOp::Sub;
            const support::SourceLoc loc = advance().loc;
            lhs = binary(op, loc, std::move(lhs), parse_mul());
        }
        return lhs;
    }

    ExprPtr parse_mul() {
        ExprPtr lhs = parse_unary();
        while (at(TokKind::Star) || at(TokKind::Slash) || at(TokKind::Percent)) {
            BinOp op = BinOp::Mul;
            if (at(TokKind::Slash)) op = BinOp::Div;
            if (at(TokKind::Percent)) op = BinOp::Mod;
            const support::SourceLoc loc = advance().loc;
            lhs = binary(op, loc, std::move(lhs), parse_unary());
        }
        return lhs;
    }

    ExprPtr parse_unary() {
        if (at(TokKind::Minus)) {
            const support::SourceLoc loc = advance().loc;
            ExprPtr e = make_expr(EKind::Unary, loc);
            e->un = UnOp::Neg;
            e->lhs = parse_unary();
            return e;
        }
        return parse_postfix();
    }

    ExprPtr parse_postfix() {
        ExprPtr e = parse_primary();
        for (;;) {
            if (at(TokKind::LBracket)) {
                const support::SourceLoc loc = advance().loc;
                ExprPtr idx = make_expr(EKind::Index, loc);
                idx->lhs = std::move(e);
                idx->rhs = parse_expr();
                expect(TokKind::RBracket, "index expression");
                e = std::move(idx);
            } else if (at(TokKind::Dot)) {
                const support::SourceLoc loc = advance().loc;
                const Token& field = expect(TokKind::Ident, "member access");
                if (field.text != "len" && field.text != "length") {
                    throw support::FrontendError("only '.len' / '.length' member exists",
                                                 field.loc);
                }
                ExprPtr len = make_expr(EKind::Len, loc);
                len->lhs = std::move(e);
                e = std::move(len);
            } else {
                return e;
            }
        }
    }

    ExprPtr parse_primary() {
        const Token& t = peek();
        switch (t.kind) {
            case TokKind::IntLit: {
                advance();
                ExprPtr e = make_expr(EKind::IntLit, t.loc);
                e->int_value = t.int_value;
                return e;
            }
            case TokKind::KwTrue:
            case TokKind::KwFalse: {
                advance();
                ExprPtr e = make_expr(EKind::BoolLit, t.loc);
                e->bool_value = t.kind == TokKind::KwTrue;
                return e;
            }
            case TokKind::KwNull: {
                advance();
                return make_expr(EKind::NullLit, t.loc);
            }
            case TokKind::LParen: {
                advance();
                ExprPtr e = parse_expr();
                expect(TokKind::RParen, "parenthesized expression");
                return e;
            }
            case TokKind::Ident: {
                advance();
                if (at(TokKind::LParen)) {
                    ExprPtr call = make_expr(EKind::Call, t.loc);
                    call->name = t.text;
                    advance();
                    if (!at(TokKind::RParen)) {
                        do {
                            call->args.push_back(parse_expr());
                        } while (accept(TokKind::Comma));
                    }
                    expect(TokKind::RParen, "call");
                    return call;
                }
                ExprPtr e = make_expr(EKind::VarRef, t.loc);
                e->name = t.text;
                return e;
            }
            default:
                fail(std::string("expected an expression, found ") + tok_kind_name(t.kind));
        }
    }

    std::vector<Token> tokens_;
    std::size_t pos_ = 0;
    int next_id_ = 0;
};

}  // namespace

Program parse_program(std::string_view source) {
    Parser parser(lex(source));
    return parser.parse_unit();
}

Program parse_single_method(std::string_view source) {
    Program prog = parse_program(source);
    if (prog.methods.size() != 1) {
        throw support::FrontendError(
            "expected exactly one method, found " + std::to_string(prog.methods.size()),
            {1, 1});
    }
    return prog;
}

}  // namespace preinfer::lang
