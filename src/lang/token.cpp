#include "src/lang/token.h"

namespace preinfer::lang {

const char* tok_kind_name(TokKind k) {
    switch (k) {
        case TokKind::End: return "end of input";
        case TokKind::Ident: return "identifier";
        case TokKind::IntLit: return "integer literal";
        case TokKind::KwMethod: return "'method'";
        case TokKind::KwVar: return "'var'";
        case TokKind::KwIf: return "'if'";
        case TokKind::KwElse: return "'else'";
        case TokKind::KwWhile: return "'while'";
        case TokKind::KwFor: return "'for'";
        case TokKind::KwReturn: return "'return'";
        case TokKind::KwAssert: return "'assert'";
        case TokKind::KwBreak: return "'break'";
        case TokKind::KwContinue: return "'continue'";
        case TokKind::KwTrue: return "'true'";
        case TokKind::KwFalse: return "'false'";
        case TokKind::KwNull: return "'null'";
        case TokKind::KwInt: return "'int'";
        case TokKind::KwBool: return "'bool'";
        case TokKind::KwStr: return "'str'";
        case TokKind::KwVoid: return "'void'";
        case TokKind::LParen: return "'('";
        case TokKind::RParen: return "')'";
        case TokKind::LBrace: return "'{'";
        case TokKind::RBrace: return "'}'";
        case TokKind::LBracket: return "'['";
        case TokKind::RBracket: return "']'";
        case TokKind::Comma: return "','";
        case TokKind::Semi: return "';'";
        case TokKind::Colon: return "':'";
        case TokKind::Dot: return "'.'";
        case TokKind::Assign: return "'='";
        case TokKind::Plus: return "'+'";
        case TokKind::Minus: return "'-'";
        case TokKind::Star: return "'*'";
        case TokKind::Slash: return "'/'";
        case TokKind::Percent: return "'%'";
        case TokKind::Bang: return "'!'";
        case TokKind::AmpAmp: return "'&&'";
        case TokKind::PipePipe: return "'||'";
        case TokKind::EqEq: return "'=='";
        case TokKind::BangEq: return "'!='";
        case TokKind::Lt: return "'<'";
        case TokKind::Le: return "'<='";
        case TokKind::Gt: return "'>'";
        case TokKind::Ge: return "'>='";
    }
    return "?";
}

}  // namespace preinfer::lang
