#include "src/lang/lexer.h"

#include <cctype>
#include <unordered_map>

#include "src/support/diagnostics.h"

namespace preinfer::lang {

namespace {

const std::unordered_map<std::string_view, TokKind>& keyword_table() {
    static const std::unordered_map<std::string_view, TokKind> table = {
        {"method", TokKind::KwMethod}, {"var", TokKind::KwVar},
        {"if", TokKind::KwIf},         {"else", TokKind::KwElse},
        {"while", TokKind::KwWhile},   {"for", TokKind::KwFor},
        {"return", TokKind::KwReturn}, {"assert", TokKind::KwAssert},
        {"break", TokKind::KwBreak},   {"continue", TokKind::KwContinue},
        {"true", TokKind::KwTrue},     {"false", TokKind::KwFalse},
        {"null", TokKind::KwNull},     {"int", TokKind::KwInt},
        {"bool", TokKind::KwBool},     {"str", TokKind::KwStr},
        {"void", TokKind::KwVoid},
    };
    return table;
}

class Cursor {
public:
    explicit Cursor(std::string_view src) : src_(src) {}

    [[nodiscard]] bool done() const { return pos_ >= src_.size(); }
    [[nodiscard]] char peek(std::size_t ahead = 0) const {
        return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
    }
    char advance() {
        const char c = src_[pos_++];
        if (c == '\n') {
            ++line_;
            col_ = 1;
        } else {
            ++col_;
        }
        return c;
    }
    [[nodiscard]] support::SourceLoc loc() const { return {line_, col_}; }

private:
    std::string_view src_;
    std::size_t pos_ = 0;
    int line_ = 1;
    int col_ = 1;
};

}  // namespace

std::vector<Token> lex(std::string_view source) {
    std::vector<Token> out;
    Cursor cur(source);

    auto simple = [&out](TokKind k, support::SourceLoc loc) {
        Token t;
        t.kind = k;
        t.loc = loc;
        out.push_back(std::move(t));
    };

    while (!cur.done()) {
        const support::SourceLoc loc = cur.loc();
        const char c = cur.peek();

        if (std::isspace(static_cast<unsigned char>(c))) {
            cur.advance();
            continue;
        }
        if (c == '/' && cur.peek(1) == '/') {
            while (!cur.done() && cur.peek() != '\n') cur.advance();
            continue;
        }
        if (c == '/' && cur.peek(1) == '*') {
            cur.advance();
            cur.advance();
            while (!cur.done() && !(cur.peek() == '*' && cur.peek(1) == '/')) cur.advance();
            if (cur.done()) throw support::FrontendError("unterminated block comment", loc);
            cur.advance();
            cur.advance();
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::int64_t value = 0;
            while (std::isdigit(static_cast<unsigned char>(cur.peek()))) {
                value = value * 10 + (cur.advance() - '0');
            }
            Token t;
            t.kind = TokKind::IntLit;
            t.int_value = value;
            t.loc = loc;
            out.push_back(std::move(t));
            continue;
        }
        if (c == '\'') {
            cur.advance();
            if (cur.done()) throw support::FrontendError("unterminated character literal", loc);
            char ch = cur.advance();
            if (ch == '\\') {
                if (cur.done()) throw support::FrontendError("unterminated escape", loc);
                const char esc = cur.advance();
                switch (esc) {
                    case 'n': ch = '\n'; break;
                    case 't': ch = '\t'; break;
                    case 'r': ch = '\r'; break;
                    case '\\': ch = '\\'; break;
                    case '\'': ch = '\''; break;
                    case '0': ch = '\0'; break;
                    default:
                        throw support::FrontendError("unknown escape in character literal", loc);
                }
            }
            if (cur.peek() != '\'')
                throw support::FrontendError("unterminated character literal", loc);
            cur.advance();
            Token t;
            t.kind = TokKind::IntLit;
            t.int_value = static_cast<unsigned char>(ch);
            t.loc = loc;
            out.push_back(std::move(t));
            continue;
        }
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::string text;
            while (std::isalnum(static_cast<unsigned char>(cur.peek())) || cur.peek() == '_') {
                text += cur.advance();
            }
            Token t;
            t.loc = loc;
            if (auto it = keyword_table().find(text); it != keyword_table().end()) {
                t.kind = it->second;
            } else {
                t.kind = TokKind::Ident;
                t.text = std::move(text);
            }
            out.push_back(std::move(t));
            continue;
        }

        cur.advance();
        switch (c) {
            case '(': simple(TokKind::LParen, loc); break;
            case ')': simple(TokKind::RParen, loc); break;
            case '{': simple(TokKind::LBrace, loc); break;
            case '}': simple(TokKind::RBrace, loc); break;
            case '[': simple(TokKind::LBracket, loc); break;
            case ']': simple(TokKind::RBracket, loc); break;
            case ',': simple(TokKind::Comma, loc); break;
            case ';': simple(TokKind::Semi, loc); break;
            case ':': simple(TokKind::Colon, loc); break;
            case '.': simple(TokKind::Dot, loc); break;
            case '+': simple(TokKind::Plus, loc); break;
            case '-': simple(TokKind::Minus, loc); break;
            case '*': simple(TokKind::Star, loc); break;
            case '/': simple(TokKind::Slash, loc); break;
            case '%': simple(TokKind::Percent, loc); break;
            case '=':
                if (cur.peek() == '=') {
                    cur.advance();
                    simple(TokKind::EqEq, loc);
                } else {
                    simple(TokKind::Assign, loc);
                }
                break;
            case '!':
                if (cur.peek() == '=') {
                    cur.advance();
                    simple(TokKind::BangEq, loc);
                } else {
                    simple(TokKind::Bang, loc);
                }
                break;
            case '<':
                if (cur.peek() == '=') {
                    cur.advance();
                    simple(TokKind::Le, loc);
                } else {
                    simple(TokKind::Lt, loc);
                }
                break;
            case '>':
                if (cur.peek() == '=') {
                    cur.advance();
                    simple(TokKind::Ge, loc);
                } else {
                    simple(TokKind::Gt, loc);
                }
                break;
            case '&':
                if (cur.peek() == '&') {
                    cur.advance();
                    simple(TokKind::AmpAmp, loc);
                } else {
                    throw support::FrontendError("expected '&&'", loc);
                }
                break;
            case '|':
                if (cur.peek() == '|') {
                    cur.advance();
                    simple(TokKind::PipePipe, loc);
                } else {
                    throw support::FrontendError("expected '||'", loc);
                }
                break;
            default:
                throw support::FrontendError(std::string("unexpected character '") + c + "'", loc);
        }
    }

    Token end;
    end.kind = TokKind::End;
    end.loc = cur.loc();
    out.push_back(std::move(end));
    return out;
}

}  // namespace preinfer::lang
