#include "src/lang/ast.h"

#include "src/support/diagnostics.h"

namespace preinfer::lang {

const char* type_name(Type t) {
    switch (t) {
        case Type::Int: return "int";
        case Type::Bool: return "bool";
        case Type::Str: return "str";
        case Type::IntArr: return "int[]";
        case Type::StrArr: return "str[]";
        case Type::Void: return "void";
    }
    return "?";
}

bool is_reference_type(Type t) {
    return t == Type::Str || t == Type::IntArr || t == Type::StrArr;
}

bool is_indexable_type(Type t) { return is_reference_type(t); }

Type element_type(Type t) {
    switch (t) {
        case Type::Str: return Type::Int;  // code points
        case Type::IntArr: return Type::Int;
        case Type::StrArr: return Type::Str;
        default:
            PI_CHECK(false, "element_type of non-indexable type");
            return Type::Void;
    }
}

const char* binop_name(BinOp op) {
    switch (op) {
        case BinOp::Add: return "+";
        case BinOp::Sub: return "-";
        case BinOp::Mul: return "*";
        case BinOp::Div: return "/";
        case BinOp::Mod: return "%";
        case BinOp::Eq: return "==";
        case BinOp::Ne: return "!=";
        case BinOp::Lt: return "<";
        case BinOp::Le: return "<=";
        case BinOp::Gt: return ">";
        case BinOp::Ge: return ">=";
        case BinOp::And: return "&&";
        case BinOp::Or: return "||";
    }
    return "?";
}

int Method::param_index(std::string_view param_name) const {
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (params[i].name == param_name) return static_cast<int>(i);
    }
    return -1;
}

std::vector<std::string> Method::param_names() const {
    std::vector<std::string> names;
    names.reserve(params.size());
    for (const Param& p : params) names.push_back(p.name);
    return names;
}

const Method* Program::find(std::string_view name) const {
    for (const Method& m : methods) {
        if (m.name == name) return &m;
    }
    return nullptr;
}

const Method* Program::method_containing(int node_id) const {
    for (const Method& m : methods) {
        if (m.owns_node(node_id)) return &m;
    }
    return nullptr;
}

ExprPtr clone(const ExprNode& e) {
    auto c = std::make_unique<ExprNode>();
    c->kind = e.kind;
    c->node_id = e.node_id;
    c->loc = e.loc;
    c->type = e.type;
    c->int_value = e.int_value;
    c->bool_value = e.bool_value;
    c->name = e.name;
    c->bin = e.bin;
    c->un = e.un;
    if (e.lhs) c->lhs = clone(*e.lhs);
    if (e.rhs) c->rhs = clone(*e.rhs);
    c->args.reserve(e.args.size());
    for (const ExprPtr& a : e.args) c->args.push_back(clone(*a));
    return c;
}

StmtPtr clone(const StmtNode& s) {
    auto c = std::make_unique<StmtNode>();
    c->kind = s.kind;
    c->node_id = s.node_id;
    c->loc = s.loc;
    c->name = s.name;
    if (s.index) c->index = clone(*s.index);
    if (s.expr) c->expr = clone(*s.expr);
    c->body.reserve(s.body.size());
    for (const StmtPtr& b : s.body) c->body.push_back(clone(*b));
    c->else_body.reserve(s.else_body.size());
    for (const StmtPtr& b : s.else_body) c->else_body.push_back(clone(*b));
    if (s.step) c->step = clone(*s.step);
    c->block_id = s.block_id;
    return c;
}

Method clone(const Method& m) {
    Method c;
    c.name = m.name;
    c.params = m.params;
    c.ret = m.ret;
    c.body.reserve(m.body.size());
    for (const StmtPtr& s : m.body) c.body.push_back(clone(*s));
    c.first_node_id = m.first_node_id;
    c.num_nodes = m.num_nodes;
    c.num_blocks = m.num_blocks;
    return c;
}

Program clone(const Program& p) {
    Program c;
    c.methods.reserve(p.methods.size());
    for (const Method& m : p.methods) c.methods.push_back(clone(m));
    return c;
}

namespace {

bool equal_opt(const ExprPtr& a, const ExprPtr& b) {
    if (!a || !b) return !a && !b;
    return structurally_equal(*a, *b);
}

bool equal_stmts(const std::vector<StmtPtr>& a, const std::vector<StmtPtr>& b) {
    if (a.size() != b.size()) return false;
    for (std::size_t i = 0; i < a.size(); ++i) {
        if (!structurally_equal(*a[i], *b[i])) return false;
    }
    return true;
}

}  // namespace

bool structurally_equal(const ExprNode& a, const ExprNode& b) {
    if (a.kind != b.kind) return false;
    switch (a.kind) {
        case EKind::IntLit:
            if (a.int_value != b.int_value) return false;
            break;
        case EKind::BoolLit:
            if (a.bool_value != b.bool_value) return false;
            break;
        case EKind::Binary:
            if (a.bin != b.bin) return false;
            break;
        case EKind::Unary:
            if (a.un != b.un) return false;
            break;
        case EKind::VarRef:
        case EKind::Call:
            if (a.name != b.name) return false;
            break;
        case EKind::NullLit:
        case EKind::Index:
        case EKind::Len:
            break;
    }
    if (!equal_opt(a.lhs, b.lhs) || !equal_opt(a.rhs, b.rhs)) return false;
    if (a.args.size() != b.args.size()) return false;
    for (std::size_t i = 0; i < a.args.size(); ++i) {
        if (!structurally_equal(*a.args[i], *b.args[i])) return false;
    }
    return true;
}

bool structurally_equal(const StmtNode& a, const StmtNode& b) {
    if (a.kind != b.kind || a.name != b.name) return false;
    if (!equal_opt(a.index, b.index) || !equal_opt(a.expr, b.expr)) return false;
    if (!equal_stmts(a.body, b.body) || !equal_stmts(a.else_body, b.else_body)) {
        return false;
    }
    if (!a.step != !b.step) return false;
    if (a.step && !structurally_equal(*a.step, *b.step)) return false;
    return true;
}

bool structurally_equal(const Method& a, const Method& b) {
    if (a.name != b.name || a.ret != b.ret) return false;
    if (a.params.size() != b.params.size()) return false;
    for (std::size_t i = 0; i < a.params.size(); ++i) {
        if (a.params[i].name != b.params[i].name ||
            a.params[i].type != b.params[i].type) {
            return false;
        }
    }
    return equal_stmts(a.body, b.body);
}

bool structurally_equal(const Program& a, const Program& b) {
    if (a.methods.size() != b.methods.size()) return false;
    for (std::size_t i = 0; i < a.methods.size(); ++i) {
        if (!structurally_equal(a.methods[i], b.methods[i])) return false;
    }
    return true;
}

void for_each_stmt(const std::vector<StmtPtr>& stmts,
                   const std::function<void(const StmtNode&)>& fn) {
    for (const StmtPtr& s : stmts) {
        fn(*s);
        for_each_stmt(s->body, fn);
        for_each_stmt(s->else_body, fn);
        if (s->step) {
            fn(*s->step);
            for_each_stmt(s->step->body, fn);
            for_each_stmt(s->step->else_body, fn);
        }
    }
}

void for_each_expr(const ExprNode& e, const std::function<void(const ExprNode&)>& fn) {
    fn(e);
    if (e.lhs) for_each_expr(*e.lhs, fn);
    if (e.rhs) for_each_expr(*e.rhs, fn);
    for (const ExprPtr& a : e.args) for_each_expr(*a, fn);
}

void for_each_expr_in(const std::vector<StmtPtr>& stmts,
                      const std::function<void(const ExprNode&)>& fn) {
    for_each_stmt(stmts, [&fn](const StmtNode& s) {
        if (s.index) for_each_expr(*s.index, fn);
        if (s.expr) for_each_expr(*s.expr, fn);
    });
}

}  // namespace preinfer::lang
