#include "src/lang/ast.h"

#include "src/support/diagnostics.h"

namespace preinfer::lang {

const char* type_name(Type t) {
    switch (t) {
        case Type::Int: return "int";
        case Type::Bool: return "bool";
        case Type::Str: return "str";
        case Type::IntArr: return "int[]";
        case Type::StrArr: return "str[]";
        case Type::Void: return "void";
    }
    return "?";
}

bool is_reference_type(Type t) {
    return t == Type::Str || t == Type::IntArr || t == Type::StrArr;
}

bool is_indexable_type(Type t) { return is_reference_type(t); }

Type element_type(Type t) {
    switch (t) {
        case Type::Str: return Type::Int;  // code points
        case Type::IntArr: return Type::Int;
        case Type::StrArr: return Type::Str;
        default:
            PI_CHECK(false, "element_type of non-indexable type");
            return Type::Void;
    }
}

const char* binop_name(BinOp op) {
    switch (op) {
        case BinOp::Add: return "+";
        case BinOp::Sub: return "-";
        case BinOp::Mul: return "*";
        case BinOp::Div: return "/";
        case BinOp::Mod: return "%";
        case BinOp::Eq: return "==";
        case BinOp::Ne: return "!=";
        case BinOp::Lt: return "<";
        case BinOp::Le: return "<=";
        case BinOp::Gt: return ">";
        case BinOp::Ge: return ">=";
        case BinOp::And: return "&&";
        case BinOp::Or: return "||";
    }
    return "?";
}

int Method::param_index(std::string_view param_name) const {
    for (std::size_t i = 0; i < params.size(); ++i) {
        if (params[i].name == param_name) return static_cast<int>(i);
    }
    return -1;
}

std::vector<std::string> Method::param_names() const {
    std::vector<std::string> names;
    names.reserve(params.size());
    for (const Param& p : params) names.push_back(p.name);
    return names;
}

const Method* Program::find(std::string_view name) const {
    for (const Method& m : methods) {
        if (m.name == name) return &m;
    }
    return nullptr;
}

const Method* Program::method_containing(int node_id) const {
    for (const Method& m : methods) {
        if (m.owns_node(node_id)) return &m;
    }
    return nullptr;
}

void for_each_stmt(const std::vector<StmtPtr>& stmts,
                   const std::function<void(const StmtNode&)>& fn) {
    for (const StmtPtr& s : stmts) {
        fn(*s);
        for_each_stmt(s->body, fn);
        for_each_stmt(s->else_body, fn);
        if (s->step) {
            fn(*s->step);
            for_each_stmt(s->step->body, fn);
            for_each_stmt(s->step->else_body, fn);
        }
    }
}

void for_each_expr(const ExprNode& e, const std::function<void(const ExprNode&)>& fn) {
    fn(e);
    if (e.lhs) for_each_expr(*e.lhs, fn);
    if (e.rhs) for_each_expr(*e.rhs, fn);
    for (const ExprPtr& a : e.args) for_each_expr(*a, fn);
}

void for_each_expr_in(const std::vector<StmtPtr>& stmts,
                      const std::function<void(const ExprNode&)>& fn) {
    for_each_stmt(stmts, [&fn](const StmtNode& s) {
        if (s.index) for_each_expr(*s.index, fn);
        if (s.expr) for_each_expr(*s.expr, fn);
    });
}

}  // namespace preinfer::lang
