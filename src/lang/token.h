#pragma once

#include <cstdint>
#include <string>

#include "src/support/source_location.h"

namespace preinfer::lang {

enum class TokKind : std::uint8_t {
    End,
    Ident,
    IntLit,
    // Keywords
    KwMethod, KwVar, KwIf, KwElse, KwWhile, KwFor, KwReturn, KwAssert,
    KwBreak, KwContinue,
    KwTrue, KwFalse, KwNull,
    KwInt, KwBool, KwStr, KwVoid,
    // Punctuation / operators
    LParen, RParen, LBrace, RBrace, LBracket, RBracket,
    Comma, Semi, Colon, Dot,
    Assign,                         // =
    Plus, Minus, Star, Slash, Percent,
    Bang,                           // !
    AmpAmp, PipePipe,
    EqEq, BangEq, Lt, Le, Gt, Ge,
};

[[nodiscard]] const char* tok_kind_name(TokKind k);

struct Token {
    TokKind kind = TokKind::End;
    std::string text;        ///< identifier spelling
    std::int64_t int_value = 0;
    support::SourceLoc loc;
};

}  // namespace preinfer::lang
