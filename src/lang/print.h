#pragma once

#include <string>

#include "src/lang/ast.h"

namespace preinfer::lang {

/// Renders an expression in MiniLang surface syntax.
[[nodiscard]] std::string to_string(const ExprNode& e);

/// Renders a method (or a whole program) in MiniLang surface syntax. The
/// output re-parses to an equivalent AST (`for` loops print in their
/// desugared block+while form), which the round-trip tests rely on.
[[nodiscard]] std::string to_string(const Method& method);
[[nodiscard]] std::string to_string(const Program& program);

}  // namespace preinfer::lang
