#pragma once

#include "src/lang/ast.h"

namespace preinfer::lang {

/// Labels every statement with the basic block it belongs to and sets
/// Method::num_blocks. A block is a maximal straight-line statement run;
/// each branch arm and loop body starts a fresh block, and so does the code
/// following an `if`/`while`/`return`. The concolic interpreter marks the
/// block of every executed statement; block coverage (Table IV) is
/// |covered| / num_blocks.
void label_blocks(Method& method);

void label_blocks(Program& program);

}  // namespace preinfer::lang
