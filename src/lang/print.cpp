#include "src/lang/print.h"

#include "src/support/diagnostics.h"

namespace preinfer::lang {

namespace {

int precedence(const ExprNode& e) {
    switch (e.kind) {
        case EKind::Binary:
            switch (e.bin) {
                case BinOp::Or: return 1;
                case BinOp::And: return 2;
                case BinOp::Eq: case BinOp::Ne: case BinOp::Lt:
                case BinOp::Le: case BinOp::Gt: case BinOp::Ge: return 3;
                case BinOp::Add: case BinOp::Sub: return 4;
                case BinOp::Mul: case BinOp::Div: case BinOp::Mod: return 5;
            }
            return 0;
        case EKind::Unary: return 6;
        default: return 7;
    }
}

void render_expr(const ExprNode& e, std::string& out);

void render_child(const ExprNode& child, int parent_prec, std::string& out) {
    const bool parens = precedence(child) < parent_prec;
    if (parens) out += '(';
    render_expr(child, out);
    if (parens) out += ')';
}

void render_expr(const ExprNode& e, std::string& out) {
    switch (e.kind) {
        case EKind::IntLit:
            out += std::to_string(e.int_value);
            return;
        case EKind::BoolLit:
            out += e.bool_value ? "true" : "false";
            return;
        case EKind::NullLit:
            out += "null";
            return;
        case EKind::VarRef:
            out += e.name;
            return;
        case EKind::Unary:
            out += e.un == UnOp::Neg ? "-" : "!";
            render_child(*e.lhs, precedence(e) + 1, out);
            return;
        case EKind::Binary: {
            const int prec = precedence(e);
            render_child(*e.lhs, prec, out);
            out += ' ';
            out += binop_name(e.bin);
            out += ' ';
            render_child(*e.rhs, prec + 1, out);
            return;
        }
        case EKind::Index:
            render_child(*e.lhs, 7, out);
            out += '[';
            render_expr(*e.rhs, out);
            out += ']';
            return;
        case EKind::Len:
            render_child(*e.lhs, 7, out);
            out += ".len";
            return;
        case EKind::Call: {
            out += e.name;
            out += '(';
            for (std::size_t i = 0; i < e.args.size(); ++i) {
                if (i > 0) out += ", ";
                render_expr(*e.args[i], out);
            }
            out += ')';
            return;
        }
    }
    PI_CHECK(false, "unhandled expression kind");
}

void indent(int depth, std::string& out) { out.append(static_cast<std::size_t>(depth) * 4, ' '); }

void render_block(const std::vector<StmtPtr>& stmts, int depth, std::string& out);

void render_stmt(const StmtNode& s, int depth, std::string& out) {
    indent(depth, out);
    switch (s.kind) {
        case SKind::VarDecl:
            out += "var " + s.name + " = ";
            render_expr(*s.expr, out);
            out += ";\n";
            return;
        case SKind::Assign:
            out += s.name;
            if (s.index) {
                out += '[';
                render_expr(*s.index, out);
                out += ']';
            }
            out += " = ";
            render_expr(*s.expr, out);
            out += ";\n";
            return;
        case SKind::If:
            out += "if (";
            render_expr(*s.expr, out);
            out += ") {\n";
            render_block(s.body, depth + 1, out);
            indent(depth, out);
            out += "}";
            if (!s.else_body.empty()) {
                out += " else {\n";
                render_block(s.else_body, depth + 1, out);
                indent(depth, out);
                out += "}";
            }
            out += '\n';
            return;
        case SKind::While:
            if (s.step) {
                // Step-carrying loops print in `for` form so `continue`
                // semantics survive a round trip.
                out += "for (; ";
                render_expr(*s.expr, out);
                out += "; ";
                out += s.step->name;
                if (s.step->index) {
                    out += '[';
                    render_expr(*s.step->index, out);
                    out += ']';
                }
                out += " = ";
                render_expr(*s.step->expr, out);
                out += ") {\n";
            } else {
                out += "while (";
                render_expr(*s.expr, out);
                out += ") {\n";
            }
            render_block(s.body, depth + 1, out);
            indent(depth, out);
            out += "}\n";
            return;
        case SKind::Return:
            out += "return";
            if (s.expr) {
                out += ' ';
                render_expr(*s.expr, out);
            }
            out += ";\n";
            return;
        case SKind::Assert:
            out += "assert(";
            render_expr(*s.expr, out);
            out += ");\n";
            return;
        case SKind::Block:
            out += "{\n";
            render_block(s.body, depth + 1, out);
            indent(depth, out);
            out += "}\n";
            return;
        case SKind::Break:
            out += "break;\n";
            return;
        case SKind::Continue:
            out += "continue;\n";
            return;
    }
    PI_CHECK(false, "unhandled statement kind");
}

void render_block(const std::vector<StmtPtr>& stmts, int depth, std::string& out) {
    for (const StmtPtr& s : stmts) render_stmt(*s, depth, out);
}

}  // namespace

std::string to_string(const ExprNode& e) {
    std::string out;
    render_expr(e, out);
    return out;
}

std::string to_string(const Method& method) {
    std::string out = "method " + method.name + "(";
    for (std::size_t i = 0; i < method.params.size(); ++i) {
        if (i > 0) out += ", ";
        out += method.params[i].name;
        out += ": ";
        out += type_name(method.params[i].type);
    }
    out += ")";
    if (method.ret != Type::Void) {
        out += " : ";
        out += type_name(method.ret);
    }
    out += " {\n";
    render_block(method.body, 1, out);
    out += "}\n";
    return out;
}

std::string to_string(const Program& program) {
    std::string out;
    for (std::size_t i = 0; i < program.methods.size(); ++i) {
        if (i > 0) out += '\n';
        out += to_string(program.methods[i]);
    }
    return out;
}

}  // namespace preinfer::lang
