#pragma once

#include <string_view>
#include <vector>

#include "src/lang/token.h"

namespace preinfer::lang {

/// Tokenizes MiniLang source. Supports `//` line comments and `/* */` block
/// comments and single-quoted character literals ('a', ' ') which lex as
/// integer literals holding the code point.
[[nodiscard]] std::vector<Token> lex(std::string_view source);

}  // namespace preinfer::lang
