#pragma once

#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "src/support/source_location.h"

namespace preinfer::lang {

/// MiniLang surface types. `Str` is a nullable character sequence (models
/// C# string); `IntArr`/`StrArr` are nullable arrays. These are exactly the
/// shapes the paper's subjects exercise.
enum class Type : std::uint8_t { Int, Bool, Str, IntArr, StrArr, Void };

[[nodiscard]] const char* type_name(Type t);
[[nodiscard]] bool is_reference_type(Type t);
[[nodiscard]] bool is_indexable_type(Type t);
/// Element type of an indexable type (Str -> Int code points).
[[nodiscard]] Type element_type(Type t);

enum class EKind : std::uint8_t {
    IntLit, BoolLit, NullLit, VarRef, Binary, Unary, Index, Len, Call,
};

enum class BinOp : std::uint8_t {
    Add, Sub, Mul, Div, Mod, Eq, Ne, Lt, Le, Gt, Ge, And, Or,
};

enum class UnOp : std::uint8_t { Neg, Not };

[[nodiscard]] const char* binop_name(BinOp op);

struct ExprNode;
using ExprPtr = std::unique_ptr<ExprNode>;

/// Expression AST node. `node_id` is unique within its Method and doubles
/// as the branch-site / assertion-location identity during execution.
struct ExprNode {
    EKind kind;
    int node_id = -1;
    support::SourceLoc loc;
    Type type = Type::Void;  ///< filled in by the type checker

    std::int64_t int_value = 0;  ///< IntLit
    bool bool_value = false;     ///< BoolLit
    std::string name;            ///< VarRef variable / Call builtin name

    BinOp bin = BinOp::Add;  ///< Binary
    UnOp un = UnOp::Neg;     ///< Unary

    ExprPtr lhs;  ///< Binary left / Unary operand / Index base / Len base
    ExprPtr rhs;  ///< Binary right / Index subscript
    std::vector<ExprPtr> args;  ///< Call arguments
};

enum class SKind : std::uint8_t {
    VarDecl, Assign, If, While, Return, Assert, Block, Break, Continue,
};

struct StmtNode;
using StmtPtr = std::unique_ptr<StmtNode>;

struct StmtNode {
    SKind kind;
    int node_id = -1;
    support::SourceLoc loc;

    std::string name;  ///< VarDecl / Assign target variable
    ExprPtr index;     ///< Assign: subscript when target is `name[index]`
    ExprPtr expr;      ///< init / rhs / condition / return value / asserted expr

    std::vector<StmtPtr> body;       ///< If-then / While body / Block statements
    std::vector<StmtPtr> else_body;  ///< If-else
    /// While only: a `for` loop's increment, executed after every iteration
    /// (including ones cut short by `continue`; skipped by `break`).
    StmtPtr step;

    int block_id = -1;  ///< coverage basic block, filled by label_blocks()
};

struct Param {
    std::string name;
    Type type = Type::Int;
};

struct Method {
    std::string name;
    std::vector<Param> params;
    Type ret = Type::Void;
    std::vector<StmtPtr> body;
    /// Node ids are unique across a whole Program (so assertion locations
    /// in callees never collide with the caller's); this method's ids fall
    /// in [first_node_id, first_node_id + num_nodes).
    int first_node_id = 0;
    int num_nodes = 0;
    int num_blocks = 0;  ///< filled by label_blocks()

    [[nodiscard]] bool owns_node(int node_id) const {
        return node_id >= first_node_id && node_id < first_node_id + num_nodes;
    }
    [[nodiscard]] int param_index(std::string_view param_name) const;  ///< -1 if absent
    [[nodiscard]] std::vector<std::string> param_names() const;
};

struct Program {
    std::vector<Method> methods;

    [[nodiscard]] const Method* find(std::string_view name) const;
    /// The method whose node-id range contains `node_id` (nullptr if none).
    [[nodiscard]] const Method* method_containing(int node_id) const;
};

/// Deep copies. Node ids, locations, types and block labels are copied
/// verbatim; re-run the frontend passes after editing a clone.
[[nodiscard]] ExprPtr clone(const ExprNode& e);
[[nodiscard]] StmtPtr clone(const StmtNode& s);
[[nodiscard]] Method clone(const Method& m);
[[nodiscard]] Program clone(const Program& p);

/// Structural (surface-syntax) equality: compares kinds, names, literal
/// values, operators and child structure, ignoring node ids, source
/// locations, inferred types and block labels. This is exactly the identity
/// the printer round-trip preserves — parse(print(p)) is structurally equal
/// to p — which the fuzzer's repro emission relies on.
[[nodiscard]] bool structurally_equal(const ExprNode& a, const ExprNode& b);
[[nodiscard]] bool structurally_equal(const StmtNode& a, const StmtNode& b);
[[nodiscard]] bool structurally_equal(const Method& a, const Method& b);
[[nodiscard]] bool structurally_equal(const Program& a, const Program& b);

/// Statement-tree walk (pre-order), visiting nested bodies.
void for_each_stmt(const std::vector<StmtPtr>& stmts,
                   const std::function<void(const StmtNode&)>& fn);

/// Expression-tree walk (pre-order).
void for_each_expr(const ExprNode& e, const std::function<void(const ExprNode&)>& fn);

/// Walk every expression appearing anywhere in a statement list.
void for_each_expr_in(const std::vector<StmtPtr>& stmts,
                      const std::function<void(const ExprNode&)>& fn);

}  // namespace preinfer::lang
