#include "src/lang/blocks.h"

#include <functional>
#include <unordered_map>

namespace preinfer::lang {

namespace {

class Labeler {
public:
    int run(std::vector<StmtPtr>& body) {
        current_ = fresh();
        label_list(body);
        return next_;
    }

private:
    int fresh() { return next_++; }

    void label_list(std::vector<StmtPtr>& stmts) {
        for (StmtPtr& s : stmts) label_stmt(*s);
    }

    void label_stmt(StmtNode& s) {
        s.block_id = current_;
        switch (s.kind) {
            case SKind::VarDecl:
            case SKind::Assign:
            case SKind::Assert:
                break;
            case SKind::Return:
            case SKind::Break:
            case SKind::Continue:
                // Whatever syntactically follows starts a new block (it is
                // reachable only via another path).
                current_ = fresh();
                break;
            case SKind::If: {
                const int join = fresh();
                current_ = fresh();
                label_list(s.body);
                if (!s.else_body.empty()) {
                    current_ = fresh();
                    label_list(s.else_body);
                }
                current_ = join;
                break;
            }
            case SKind::While: {
                const int exit = fresh();
                current_ = fresh();
                label_list(s.body);
                if (s.step) label_stmt(*s.step);
                current_ = exit;
                break;
            }
            case SKind::Block:
                // Transparent grouping: no new block.
                label_list(s.body);
                break;
        }
    }

    int next_ = 0;
    int current_ = 0;
};

}  // namespace

void label_blocks(Method& method) {
    Labeler labeler;
    labeler.run(method.body);

    // Join/exit blocks that ended up holding no statement would inflate the
    // denominator of block coverage; renumber the used ids densely.
    std::unordered_map<int, int> remap;
    const std::function<void(std::vector<StmtPtr>&)> renumber =
        [&](std::vector<StmtPtr>& stmts) {
            for (StmtPtr& s : stmts) {
                auto [it, _] = remap.emplace(s->block_id, static_cast<int>(remap.size()));
                s->block_id = it->second;
                renumber(s->body);
                renumber(s->else_body);
            }
        };
    renumber(method.body);
    method.num_blocks = static_cast<int>(remap.size());
}

void label_blocks(Program& program) {
    for (Method& m : program.methods) label_blocks(m);
}

}  // namespace preinfer::lang
