#include "src/lang/type_check.h"

#include <unordered_map>

#include "src/support/diagnostics.h"

namespace preinfer::lang {

namespace {

class Checker {
public:
    Checker(Method& m, const Program* program) : method_(m), program_(program) {}

    void run() {
        scopes_.emplace_back();
        for (const Param& p : method_.params) {
            if (p.type == Type::Void)
                throw support::FrontendError("parameter '" + p.name + "' cannot be void", {});
            if (!declare(p.name, p.type))
                throw support::FrontendError("duplicate parameter '" + p.name + "'", {});
        }
        check_block(method_.body);
        scopes_.pop_back();
    }

private:
    [[noreturn]] static void fail(const std::string& message, support::SourceLoc loc) {
        throw support::FrontendError(message, loc);
    }

    bool declare(const std::string& name, Type t) {
        return scopes_.back().emplace(name, t).second;
    }

    [[nodiscard]] const Type* lookup(const std::string& name) const {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            if (auto f = it->find(name); f != it->end()) return &f->second;
        }
        return nullptr;
    }

    void check_block(const std::vector<StmtPtr>& stmts) {
        scopes_.emplace_back();
        for (const StmtPtr& s : stmts) check_stmt(*s);
        scopes_.pop_back();
    }

    void check_stmt(StmtNode& s) {
        switch (s.kind) {
            case SKind::VarDecl: {
                const Type t = check_expr(*s.expr);
                if (t == Type::Void) {
                    if (s.expr->kind == EKind::NullLit)
                        fail("cannot infer type of 'var " + s.name + " = null'", s.loc);
                    fail("void initializer for '" + s.name + "'", s.loc);
                }
                if (!declare(s.name, t))
                    fail("redeclaration of '" + s.name + "'", s.loc);
                break;
            }
            case SKind::Assign: {
                const Type* target = lookup(s.name);
                if (!target) fail("assignment to undeclared variable '" + s.name + "'", s.loc);
                if (s.index) {
                    if (!is_indexable_type(*target))
                        fail("cannot index variable '" + s.name + "' of type " +
                                 type_name(*target),
                             s.loc);
                    if (*target == Type::Str)
                        fail("str is immutable; cannot assign to its elements", s.loc);
                    require(*s.index, Type::Int, "index");
                    require_assignable(*s.expr, element_type(*target));
                } else {
                    require_assignable(*s.expr, *target);
                }
                break;
            }
            case SKind::If:
                require(*s.expr, Type::Bool, "if condition");
                check_block(s.body);
                check_block(s.else_body);
                break;
            case SKind::While:
                require(*s.expr, Type::Bool, "while condition");
                ++loop_depth_;
                check_block(s.body);
                if (s.step) check_stmt(*s.step);
                --loop_depth_;
                break;
            case SKind::Return:
                if (method_.ret == Type::Void) {
                    if (s.expr) fail("void method cannot return a value", s.loc);
                } else {
                    if (!s.expr) fail("missing return value", s.loc);
                    require_assignable(*s.expr, method_.ret);
                }
                break;
            case SKind::Assert:
                require(*s.expr, Type::Bool, "assert condition");
                break;
            case SKind::Block:
                check_block(s.body);
                break;
            case SKind::Break:
                if (loop_depth_ == 0) fail("'break' outside a loop", s.loc);
                break;
            case SKind::Continue:
                if (loop_depth_ == 0) fail("'continue' outside a loop", s.loc);
                break;
        }
    }

    void require(ExprNode& e, Type expected, const char* what) {
        const Type t = check_expr(e);
        if (t != expected) {
            fail(std::string(what) + " must be " + type_name(expected) + ", found " +
                     type_name(t),
                 e.loc);
        }
    }

    /// Checks `e` against a known target type, allowing `null` for
    /// reference targets (the null literal adopts the target type).
    void require_assignable(ExprNode& e, Type target) {
        if (e.kind == EKind::NullLit) {
            if (!is_reference_type(target))
                fail(std::string("null cannot be assigned to ") + type_name(target), e.loc);
            e.type = target;
            return;
        }
        const Type t = check_expr(e);
        if (t != target) {
            fail(std::string("expected ") + type_name(target) + ", found " + type_name(t),
                 e.loc);
        }
    }

    Type check_expr(ExprNode& e) {
        e.type = infer_expr(e);
        return e.type;
    }

    Type infer_expr(ExprNode& e) {
        switch (e.kind) {
            case EKind::IntLit: return Type::Int;
            case EKind::BoolLit: return Type::Bool;
            case EKind::NullLit:
                // Stand-alone null only appears in comparison / assignment
                // contexts, which assign its type; reaching here means the
                // context could not determine one.
                fail("null literal in a context where its type cannot be inferred", e.loc);
            case EKind::VarRef: {
                const Type* t = lookup(e.name);
                if (!t) fail("use of undeclared variable '" + e.name + "'", e.loc);
                return *t;
            }
            case EKind::Unary:
                if (e.un == UnOp::Neg) {
                    require(*e.lhs, Type::Int, "operand of unary '-'");
                    return Type::Int;
                }
                require(*e.lhs, Type::Bool, "operand of '!'");
                return Type::Bool;
            case EKind::Binary: return infer_binary(e);
            case EKind::Index: {
                const Type base = check_expr(*e.lhs);
                if (!is_indexable_type(base))
                    fail(std::string("cannot index a value of type ") + type_name(base), e.loc);
                require(*e.rhs, Type::Int, "index");
                return element_type(base);
            }
            case EKind::Len: {
                const Type base = check_expr(*e.lhs);
                if (!is_indexable_type(base))
                    fail(std::string("'.len' applied to ") + type_name(base), e.loc);
                return Type::Int;
            }
            case EKind::Call: return infer_call(e);
        }
        PI_CHECK(false, "unhandled expression kind");
    }

    Type infer_binary(ExprNode& e) {
        switch (e.bin) {
            case BinOp::Add: case BinOp::Sub: case BinOp::Mul:
            case BinOp::Div: case BinOp::Mod:
                require(*e.lhs, Type::Int, "arithmetic operand");
                require(*e.rhs, Type::Int, "arithmetic operand");
                return Type::Int;
            case BinOp::Lt: case BinOp::Le: case BinOp::Gt: case BinOp::Ge:
                require(*e.lhs, Type::Int, "comparison operand");
                require(*e.rhs, Type::Int, "comparison operand");
                return Type::Bool;
            case BinOp::And: case BinOp::Or:
                require(*e.lhs, Type::Bool, "logical operand");
                require(*e.rhs, Type::Bool, "logical operand");
                return Type::Bool;
            case BinOp::Eq: case BinOp::Ne: {
                // Resolve null literals against the other operand.
                if (e.lhs->kind == EKind::NullLit && e.rhs->kind == EKind::NullLit)
                    fail("cannot compare null with null", e.loc);
                if (e.lhs->kind == EKind::NullLit) {
                    const Type rt = check_expr(*e.rhs);
                    if (!is_reference_type(rt))
                        fail(std::string("cannot compare null with ") + type_name(rt), e.loc);
                    e.lhs->type = rt;
                    return Type::Bool;
                }
                const Type lt = check_expr(*e.lhs);
                if (e.rhs->kind == EKind::NullLit) {
                    if (!is_reference_type(lt))
                        fail(std::string("cannot compare ") + type_name(lt) + " with null",
                             e.loc);
                    e.rhs->type = lt;
                    return Type::Bool;
                }
                const Type rt = check_expr(*e.rhs);
                if (lt != rt)
                    fail(std::string("cannot compare ") + type_name(lt) + " with " +
                             type_name(rt),
                         e.loc);
                if (is_reference_type(lt))
                    fail("reference equality between two non-null references is not "
                         "supported; compare against null",
                         e.loc);
                return Type::Bool;
            }
        }
        PI_CHECK(false, "unhandled binary operator");
    }

    Type infer_call(ExprNode& e) {
        auto arity = [&](std::size_t n) {
            if (e.args.size() != n)
                fail("builtin '" + e.name + "' expects " + std::to_string(n) + " argument(s)",
                     e.loc);
        };
        if (e.name == "iswhitespace") {
            arity(1);
            require(*e.args[0], Type::Int, "iswhitespace argument");
            return Type::Bool;
        }
        if (e.name == "newintarray") {
            arity(1);
            require(*e.args[0], Type::Int, "newintarray argument");
            return Type::IntArr;
        }
        if (e.name == "newstrarray") {
            arity(1);
            require(*e.args[0], Type::Int, "newstrarray argument");
            return Type::StrArr;
        }
        // User-defined method call (interprocedural analysis support).
        if (program_ != nullptr) {
            if (const Method* callee = program_->find(e.name)) {
                if (callee->ret == Type::Void)
                    fail("void method '" + e.name + "' cannot be used in an expression",
                         e.loc);
                if (e.args.size() != callee->params.size())
                    fail("call to '" + e.name + "' expects " +
                             std::to_string(callee->params.size()) + " argument(s)",
                         e.loc);
                for (std::size_t i = 0; i < e.args.size(); ++i) {
                    require_assignable(*e.args[i], callee->params[i].type);
                }
                return callee->ret;
            }
        }
        fail("unknown method or builtin '" + e.name + "'", e.loc);
    }

    Method& method_;
    const Program* program_;
    int loop_depth_ = 0;
    std::vector<std::unordered_map<std::string, Type>> scopes_;
};

}  // namespace

void type_check_method(Method& method) { Checker(method, nullptr).run(); }

void type_check(Program& program) {
    for (std::size_t i = 0; i < program.methods.size(); ++i) {
        for (std::size_t j = i + 1; j < program.methods.size(); ++j) {
            if (program.methods[i].name == program.methods[j].name) {
                throw support::FrontendError(
                    "duplicate method '" + program.methods[i].name + "'", {});
            }
        }
    }
    for (Method& m : program.methods) Checker(m, &program).run();
}

}  // namespace preinfer::lang
