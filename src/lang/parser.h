#pragma once

#include <string_view>

#include "src/lang/ast.h"

namespace preinfer::lang {

/// Parses a MiniLang compilation unit:
///
///   method name(p: int, s: str[]) : int { ... }
///
/// Statements: `var x = e;`, assignment (`x = e;`, `a[i] = e;`), `if/else`,
/// `while`, `for(init; cond; step)` (desugared into a block + while),
/// `return e;`, `assert(e);`.
/// Expressions: `+ - * / %`, comparisons, `&& || !` (short-circuit),
/// indexing `a[i]`, `.len`/`.length`, `null`, char literals, and the
/// builtins `iswhitespace(e)` and `newintarray(n)`.
///
/// Throws support::FrontendError on syntax errors. The returned program is
/// parsed but not yet type-checked (see type_check.h).
[[nodiscard]] Program parse_program(std::string_view source);

/// Convenience: parse a unit that must contain exactly one method.
[[nodiscard]] Program parse_single_method(std::string_view source);

}  // namespace preinfer::lang
