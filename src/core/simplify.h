#pragma once

#include "src/core/pred.h"

namespace preinfer::core {

/// Logic-preserving cleanups that keep inferred preconditions succinct:
///  * flattening of nested And/Or (done by the constructors already);
///  * removal of duplicate conjuncts/disjuncts ("these duplicates are
///    removed, further simplifying α" — Section III-A);
///  * removal of `p && !p` / `p || !p` pairs where detectable on atoms;
///  * subsumption: in an Or, a disjunct whose conjunct set is a superset of
///    another disjunct's is implied by it and dropped; dually for clauses
///    of an And;
///  * bound tightening: within a conjunction, comparisons of one integer
///    term against constants intersect to a single interval
///    (`100 < n && 120 < n && n <= 161` becomes `n >= 121 && n <= 161`),
///    and an empty interval collapses the conjunct to false;
///  * interval union: disjuncts that are pure intervals over the same term
///    merge when they overlap or are adjacent over the integers
///    (`n == 100 || n == 101 || ... || n == 161` becomes
///    `n >= 100 && n <= 161`), which is what keeps loop-counted paths from
///    exploding the disjunction.
[[nodiscard]] PredPtr simplify(sym::ExprPool& pool, const PredPtr& p);

}  // namespace preinfer::core
