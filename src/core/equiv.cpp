#include "src/core/equiv.h"

#include "src/sym/rewrite.h"

namespace preinfer::core {

namespace {

/// Replaces every BoundVar leaf with a fresh integer parameter so the
/// quantifier-free solver can reason about the shape.
const sym::Expr* ground_bound_vars(sym::ExprPool& pool, const sym::Expr* e) {
    if (!e->has_bound) return e;
    std::unordered_map<const sym::Expr*, const sym::Expr*> map;
    sym::for_each_node(e, [&](const sym::Expr* n) {
        if (n->kind == sym::Kind::BoundVar) {
            // Parameter indices of real methods are tiny; offset far away.
            map.emplace(n, pool.param(100000 + static_cast<int>(n->a), sym::Sort::Int));
        }
    });
    return sym::substitute(pool, e, map);
}

bool unsat(solver::Solver& solver, const sym::Expr* x, const sym::Expr* y) {
    const sym::Expr* conjuncts[] = {x, y};
    return solver.solve(conjuncts).status == solver::SolveStatus::Unsat;
}

}  // namespace

bool semantically_equal(sym::ExprPool& pool, solver::Solver& solver,
                        const sym::Expr* a, const sym::Expr* b) {
    if (a == b) return true;
    const sym::Expr* ga = ground_bound_vars(pool, a);
    const sym::Expr* gb = ground_bound_vars(pool, b);
    if (ga == gb) return true;
    return unsat(solver, ga, pool.negate(gb)) && unsat(solver, pool.negate(ga), gb);
}

}  // namespace preinfer::core
