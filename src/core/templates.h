#pragma once

#include <memory>
#include <optional>

#include "src/core/pred.h"
#include "src/core/pruning.h"
#include "src/solver/solver.h"

namespace preinfer::core {

/// Facts about one collection object appearing in a reduced failing path
/// condition. Positions index into ReducedPath::preds.
struct CollectionInfo {
    const sym::Expr* obj = nullptr;

    struct ElemAtom {
        std::size_t pos = 0;
        std::int64_t k = 0;       ///< the concrete element index
        const sym::Expr* shape;   ///< predicate with Select(obj, k) -> Select(obj, i)
    };
    struct DomainAtom {
        std::size_t pos = 0;
        std::int64_t k = 0;  ///< the atom implies k < obj.len
    };
    struct LenBound {
        std::size_t pos = 0;
        std::int64_t bound = 0;  ///< the atom implies obj.len <= bound
    };

    std::vector<ElemAtom> elems;
    std::vector<DomainAtom> domains;
    std::vector<LenBound> len_bounds;
};

/// Scans a reduced path condition for overly specific predicates: element
/// predicates `φ(obj[k])` (anti-unified into a shape over bound variable 0),
/// index-domain predicates `k < obj.len`, and length upper bounds
/// `obj.len <= B` (including pinned forms like `obj.len - 1 == 2`).
[[nodiscard]] std::vector<CollectionInfo> analyze_collections(sym::ExprPool& pool,
                                                              const ReducedPath& rp);

/// A successful template instantiation: the quantified predicate plus the
/// positions of the overly specific predicates it subsumes.
struct TemplateMatch {
    PredPtr quantified;
    std::vector<std::size_t> consumed;
    int score = 0;  ///< number of subsumed predicates (paper: "based on the
                    ///< number of subsumed overly specific predicates")
    const char* template_name = "";
};

/// One generalization template (Section IV-B). New templates "can be easily
/// added as long as they operate over the predicates from failing path
/// conditions" — implement this interface and register it.
class GeneralizationTemplate {
public:
    virtual ~GeneralizationTemplate() = default;
    [[nodiscard]] virtual const char* name() const = 0;
    /// `equivalence_solver`, when non-null, lets shape comparisons fall back
    /// to solver-decided semantic equivalence (the paper's proposed
    /// improvement over raw-representation matching, Section V-C).
    [[nodiscard]] virtual std::optional<TemplateMatch> try_match(
        sym::ExprPool& pool, const ReducedPath& rp, const CollectionInfo& info,
        solver::Solver* equivalence_solver = nullptr) const = 0;
};

/// Existential Template: only the last visited element a[K] satisfies φ,
/// all previously visited ones satisfy ¬φ — the failure fires inside the
/// loop. Yields  ∃i. (i < a.len) && φ(a[i]).
[[nodiscard]] std::unique_ptr<GeneralizationTemplate> existential_template();

/// Universal Template: every visited element satisfies φ and the loop ran
/// off the end of the collection — the failure fires after the loop.
/// Yields  ∀i. (i < a.len) -> φ(a[i]).
[[nodiscard]] std::unique_ptr<GeneralizationTemplate> universal_template();

/// Strided Existential Template: the loop visits every stride-th element
/// and aborts at the first one satisfying φ; yields
/// ∃i. (i < a.len && i % stride == K % stride) && φ(a[i]).
[[nodiscard]] std::unique_ptr<GeneralizationTemplate> strided_existential_template(
    std::int64_t stride);

/// Strided Universal Template (the paper's worked extension, Section IV-B):
/// every visited stride-th element satisfies φ and the loop exhausted the
/// collection; yields  ∀i. (i < a.len && i % stride == 0) -> φ(a[i]).
[[nodiscard]] std::unique_ptr<GeneralizationTemplate> strided_universal_template(
    std::int64_t stride);

/// Orders templates; first match wins among equal scores.
class TemplateRegistry {
public:
    /// The default registry: Existential, Universal, StridedExistential(2),
    /// StridedUniversal(2).
    static TemplateRegistry standard();
    /// No templates (generalization off — ablation).
    static TemplateRegistry none();

    void add(std::unique_ptr<GeneralizationTemplate> t) {
        templates_.push_back(std::move(t));
    }

    [[nodiscard]] std::span<const std::unique_ptr<GeneralizationTemplate>> templates()
        const {
        return templates_;
    }

private:
    std::vector<std::unique_ptr<GeneralizationTemplate>> templates_;
};

}  // namespace preinfer::core
