#include "src/core/pred_eval.h"

#include "src/support/diagnostics.h"

namespace preinfer::core {

namespace {

using sym::EvalValue;

Tri from_eval(const EvalValue& v) {
    if (v.tag != EvalValue::Tag::Bool) return Tri::Undef;
    return v.i != 0 ? Tri::True : Tri::False;
}

Tri tri_not(Tri t) {
    switch (t) {
        case Tri::True: return Tri::False;
        case Tri::False: return Tri::True;
        case Tri::Undef: return Tri::Undef;
    }
    return Tri::Undef;
}

Tri eval_rec(const PredPtr& p, const sym::EvalEnv& env, sym::BoundEnv& bound) {
    switch (p->kind) {
        case PredKind::Atom: {
            if (p->atom == nullptr) {
                return p->bound_id ? Tri::True : Tri::False;  // literal true/false
            }
            return from_eval(sym::eval(p->atom, env, &bound));
        }
        case PredKind::And: {
            Tri acc = Tri::True;
            for (const PredPtr& k : p->kids) {
                const Tri v = eval_rec(k, env, bound);
                if (v == Tri::False) return Tri::False;
                if (v == Tri::Undef) acc = Tri::Undef;
            }
            return acc;
        }
        case PredKind::Or: {
            Tri acc = Tri::False;
            for (const PredPtr& k : p->kids) {
                const Tri v = eval_rec(k, env, bound);
                if (v == Tri::True) return Tri::True;
                if (v == Tri::Undef) acc = Tri::Undef;
            }
            return acc;
        }
        case PredKind::Not:
            return tri_not(eval_rec(p->kids[0], env, bound));
        case PredKind::Forall:
        case PredKind::Exists: {
            const bool universal = p->kind == PredKind::Forall;
            const EvalValue obj = sym::eval(p->bound_obj, env, &bound);
            if (obj.tag != EvalValue::Tag::Obj) {
                // Null (or unevaluable) collection: no eligible indices.
                return universal ? Tri::True : Tri::False;
            }
            const std::int64_t len = env.obj_len(obj.obj);
            Tri acc = universal ? Tri::True : Tri::False;
            for (std::int64_t i = 0; i < len; ++i) {
                bound[p->bound_id] = i;
                const Tri dom = from_eval(sym::eval(p->domain, env, &bound));
                if (dom == Tri::False) continue;
                const Tri body = from_eval(sym::eval(p->body, env, &bound));
                if (universal) {
                    // A decisive counterexample needs a definitely-eligible
                    // index with a definitely-false body.
                    if (dom == Tri::True && body == Tri::False) {
                        bound.erase(p->bound_id);
                        return Tri::False;
                    }
                } else {
                    if (dom == Tri::True && body == Tri::True) {
                        bound.erase(p->bound_id);
                        return Tri::True;
                    }
                }
                if (dom == Tri::Undef || body == Tri::Undef) acc = Tri::Undef;
            }
            bound.erase(p->bound_id);
            return acc;
        }
    }
    PI_CHECK(false, "unhandled pred kind");
    return Tri::Undef;
}

}  // namespace

Tri eval_pred_3v(const PredPtr& p, const sym::EvalEnv& env) {
    sym::BoundEnv bound;
    return eval_rec(p, env, bound);
}

bool eval_pred(const PredPtr& p, const sym::EvalEnv& env) {
    return eval_pred_3v(p, env) == Tri::True;
}

}  // namespace preinfer::core
