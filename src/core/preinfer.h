#pragma once

#include "src/core/generalize.h"
#include "src/core/pruning.h"
#include "src/core/simplify.h"
#include "src/sym/eval.h"

namespace preinfer::core {

struct PreInferConfig {
    PruningConfig pruning{};
    bool generalization_enabled = true;
    /// Let template shape-matching fall back to solver-decided semantic
    /// equivalence (the paper's Section V-C improvement). Costs extra
    /// solver calls on mismatching shapes.
    bool semantic_template_matching = false;
    /// Verify each disjunct against the passing tests and fall back to a
    /// less-reduced form if a passing state slipped in (enforces the
    /// "ρ_pi ∧ ρ'_fk unsatisfiable" side conditions with the evidence at
    /// hand). On by default; the ablation bench switches it off.
    bool verify_against_passing = true;
};

/// Everything one inference produces.
struct InferenceResult {
    bool inferred = false;   ///< false iff there were no failing paths
    PredPtr alpha;           ///< generalized summary of the unsafe states
    PredPtr precondition;    ///< ¬α — what the developer would insert

    PruningStats pruning;
    int failing_paths = 0;
    int generalized_paths = 0;          ///< paths where ≥1 template fired
    int pruning_fallbacks = 0;          ///< disjuncts reverted to the full PC
    int generalization_fallbacks = 0;   ///< disjuncts reverted to the pruned PC
    std::vector<std::string> template_uses;  ///< template name per application
};

/// The PreInfer pipeline (Section IV): per failing path condition, dynamic
/// predicate pruning, then collection-element generalization; α is the
/// disjunction of the resulting conditions (duplicates removed) and the
/// inferred precondition is ¬α.
///
/// `passing_envs` supplies concrete passing entry states used by the
/// verification step; they must parallel nothing in particular — any set of
/// known-passing states works (the harness passes T_pass(e)).
class PreInfer {
public:
    PreInfer(sym::ExprPool& pool, PreInferConfig config = {},
             const TemplateRegistry* registry = nullptr,
             WitnessOracle* oracle = nullptr);

    [[nodiscard]] InferenceResult infer(
        AclId acl, std::vector<const PathCondition*> failing,
        std::vector<const PathCondition*> passing,
        std::span<const sym::EvalEnv* const> passing_envs = {});

private:
    sym::ExprPool& pool_;
    PreInferConfig config_;
    TemplateRegistry default_registry_;
    const TemplateRegistry* registry_;
    WitnessOracle* oracle_;
};

}  // namespace preinfer::core
