#include "src/core/pred.h"

#include "src/support/diagnostics.h"
#include "src/sym/print.h"
#include "src/sym/rewrite.h"

namespace preinfer::core {

namespace {

PredPtr make(Pred p) { return std::make_shared<const Pred>(std::move(p)); }

}  // namespace

PredPtr make_atom(const sym::Expr* e) {
    PI_CHECK(e != nullptr && e->sort == sym::Sort::Bool, "atom must be a bool expression");
    Pred p;
    p.kind = PredKind::Atom;
    p.atom = e;
    return make(std::move(p));
}

namespace {

// The two boolean literals need a pool-independent representation; use
// dedicated singletons with a null atom plus a flag encoded via kids size.
// Simpler: a process-wide tiny pool just for BoolConst atoms would leak
// pointers across sessions, so instead literal preds carry their value in
// bound_id (0/1) with kind Atom and atom == nullptr.
PredPtr make_literal(bool value) {
    Pred p;
    p.kind = PredKind::Atom;
    p.atom = nullptr;
    p.bound_id = value ? 1 : 0;
    return make(std::move(p));
}

bool is_literal(const PredPtr& p, bool value) {
    return p->kind == PredKind::Atom && p->atom == nullptr &&
           p->bound_id == (value ? 1 : 0);
}

}  // namespace

PredPtr make_true() {
    static const PredPtr t = make_literal(true);
    return t;
}

PredPtr make_false() {
    static const PredPtr f = make_literal(false);
    return f;
}

bool is_true(const PredPtr& p) {
    if (is_literal(p, true)) return true;
    return p->kind == PredKind::Atom && p->atom &&
           p->atom->kind == sym::Kind::BoolConst && p->atom->a != 0;
}

bool is_false(const PredPtr& p) {
    if (is_literal(p, false)) return true;
    return p->kind == PredKind::Atom && p->atom &&
           p->atom->kind == sym::Kind::BoolConst && p->atom->a == 0;
}

PredPtr make_and(std::vector<PredPtr> kids) {
    std::vector<PredPtr> flat;
    for (PredPtr& k : kids) {
        PI_CHECK(k != nullptr, "null conjunct");
        if (is_true(k)) continue;
        if (is_false(k)) return make_false();
        if (k->kind == PredKind::And) {
            for (const PredPtr& g : k->kids) flat.push_back(g);
        } else {
            flat.push_back(std::move(k));
        }
    }
    if (flat.empty()) return make_true();
    if (flat.size() == 1) return flat[0];
    Pred p;
    p.kind = PredKind::And;
    p.kids = std::move(flat);
    return make(std::move(p));
}

PredPtr make_or(std::vector<PredPtr> kids) {
    std::vector<PredPtr> flat;
    for (PredPtr& k : kids) {
        PI_CHECK(k != nullptr, "null disjunct");
        if (is_false(k)) continue;
        if (is_true(k)) return make_true();
        if (k->kind == PredKind::Or) {
            for (const PredPtr& g : k->kids) flat.push_back(g);
        } else {
            flat.push_back(std::move(k));
        }
    }
    if (flat.empty()) return make_false();
    if (flat.size() == 1) return flat[0];
    Pred p;
    p.kind = PredKind::Or;
    p.kids = std::move(flat);
    return make(std::move(p));
}

PredPtr make_not(PredPtr inner) {
    PI_CHECK(inner != nullptr, "null operand of not");
    if (is_true(inner)) return make_false();
    if (is_false(inner)) return make_true();
    if (inner->kind == PredKind::Not) return inner->kids[0];
    Pred p;
    p.kind = PredKind::Not;
    p.kids.push_back(std::move(inner));
    return make(std::move(p));
}

namespace {

PredPtr make_quantifier(PredKind kind, int bound_id, const sym::Expr* bound_obj,
                        const sym::Expr* domain, const sym::Expr* body) {
    PI_CHECK(bound_obj != nullptr && bound_obj->sort == sym::Sort::Obj,
             "quantifier needs a collection object");
    PI_CHECK(domain != nullptr && domain->sort == sym::Sort::Bool,
             "quantifier domain must be boolean");
    PI_CHECK(body != nullptr && body->sort == sym::Sort::Bool,
             "quantifier body must be boolean");
    Pred p;
    p.kind = kind;
    p.bound_id = bound_id;
    p.bound_obj = bound_obj;
    p.domain = domain;
    p.body = body;
    return make(std::move(p));
}

}  // namespace

PredPtr make_forall(int bound_id, const sym::Expr* bound_obj, const sym::Expr* domain,
                    const sym::Expr* body) {
    return make_quantifier(PredKind::Forall, bound_id, bound_obj, domain, body);
}

PredPtr make_exists(int bound_id, const sym::Expr* bound_obj, const sym::Expr* domain,
                    const sym::Expr* body) {
    return make_quantifier(PredKind::Exists, bound_id, bound_obj, domain, body);
}

bool pred_equal(const PredPtr& a, const PredPtr& b) {
    if (a == b) return true;
    if (a->kind != b->kind) {
        // Literal true/false vs BoolConst atoms.
        return (is_true(a) && is_true(b)) || (is_false(a) && is_false(b));
    }
    switch (a->kind) {
        case PredKind::Atom:
            return a->atom == b->atom && a->bound_id == b->bound_id;
        case PredKind::And:
        case PredKind::Or: {
            if (a->kids.size() != b->kids.size()) return false;
            for (std::size_t i = 0; i < a->kids.size(); ++i) {
                if (!pred_equal(a->kids[i], b->kids[i])) return false;
            }
            return true;
        }
        case PredKind::Not:
            return pred_equal(a->kids[0], b->kids[0]);
        case PredKind::Forall:
        case PredKind::Exists: {
            if (a->bound_obj != b->bound_obj) return false;
            if (a->bound_id == b->bound_id) {
                return a->domain == b->domain && a->body == b->body;
            }
            // α-equivalence would need a pool to rename; quantifiers built
            // by the library always use bound id 0, so mismatched ids are
            // simply unequal.
            return false;
        }
    }
    return false;
}

PredPtr negate(sym::ExprPool& pool, const PredPtr& p) {
    if (is_true(p)) return make_false();
    if (is_false(p)) return make_true();
    switch (p->kind) {
        case PredKind::Atom:
            return make_atom(pool.negate(p->atom));
        case PredKind::And: {
            std::vector<PredPtr> kids;
            kids.reserve(p->kids.size());
            for (const PredPtr& k : p->kids) kids.push_back(negate(pool, k));
            return make_or(std::move(kids));
        }
        case PredKind::Or: {
            std::vector<PredPtr> kids;
            kids.reserve(p->kids.size());
            for (const PredPtr& k : p->kids) kids.push_back(negate(pool, k));
            return make_and(std::move(kids));
        }
        case PredKind::Not:
            return p->kids[0];
        case PredKind::Forall:
            return make_exists(p->bound_id, p->bound_obj, p->domain,
                               pool.negate(p->body));
        case PredKind::Exists:
            return make_forall(p->bound_id, p->bound_obj, p->domain,
                               pool.negate(p->body));
    }
    PI_CHECK(false, "unhandled pred kind in negate");
    return nullptr;
}

namespace {

void render(const PredPtr& p, std::span<const std::string> names, std::string& out,
            int parent_prec) {
    // Precedence: Or=1, And=2, Not/quantifier/atom=3.
    switch (p->kind) {
        case PredKind::Atom:
            if (p->atom == nullptr) {
                out += p->bound_id ? "true" : "false";
            } else {
                out += sym::to_string(p->atom, names);
            }
            return;
        case PredKind::And: {
            const bool parens = parent_prec > 2;
            if (parens) out += '(';
            for (std::size_t i = 0; i < p->kids.size(); ++i) {
                if (i > 0) out += " && ";
                render(p->kids[i], names, out, 3);
            }
            if (parens) out += ')';
            return;
        }
        case PredKind::Or: {
            const bool parens = parent_prec > 1;
            if (parens) out += '(';
            for (std::size_t i = 0; i < p->kids.size(); ++i) {
                if (i > 0) out += " || ";
                render(p->kids[i], names, out, 2);
            }
            if (parens) out += ')';
            return;
        }
        case PredKind::Not:
            out += "!(";
            render(p->kids[0], names, out, 0);
            out += ')';
            return;
        case PredKind::Forall:
        case PredKind::Exists: {
            out += p->kind == PredKind::Forall ? "forall " : "exists ";
            // Bound variable name matches sym printing of BoundVar.
            static const char* kNames[] = {"i", "j", "k"};
            out += (p->bound_id >= 0 && p->bound_id < 3)
                       ? kNames[p->bound_id]
                       : ("i" + std::to_string(p->bound_id));
            out += ". (";
            out += sym::to_string(p->domain, names);
            out += p->kind == PredKind::Forall ? ") => (" : ") && (";
            out += sym::to_string(p->body, names);
            out += ')';
            return;
        }
    }
}

}  // namespace

std::string to_string(const PredPtr& p, std::span<const std::string> param_names) {
    std::string out;
    render(p, param_names, out, 0);
    return out;
}

}  // namespace preinfer::core
