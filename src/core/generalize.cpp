#include "src/core/generalize.h"

#include <algorithm>

namespace preinfer::core {

GeneralizedPath generalize(sym::ExprPool& pool, const TemplateRegistry& registry,
                           const ReducedPath& rp, solver::Solver* equivalence_solver) {
    GeneralizedPath out;
    out.original = rp.original;

    // Best match per collection.
    std::vector<TemplateMatch> matches;
    for (const CollectionInfo& info : analyze_collections(pool, rp)) {
        std::optional<TemplateMatch> best;
        for (const auto& tmpl : registry.templates()) {
            auto m = tmpl->try_match(pool, rp, info, equivalence_solver);
            if (m && (!best || m->score > best->score)) best = std::move(m);
        }
        if (best) matches.push_back(std::move(*best));
    }

    // Greedily apply non-overlapping matches, strongest first.
    std::sort(matches.begin(), matches.end(),
              [](const TemplateMatch& a, const TemplateMatch& b) {
                  return a.score > b.score;
              });
    std::vector<bool> consumed(rp.preds.size(), false);
    // anchor position -> quantified predicate inserted there
    std::vector<std::pair<std::size_t, const TemplateMatch*>> applied;
    for (const TemplateMatch& m : matches) {
        const bool overlaps = std::any_of(
            m.consumed.begin(), m.consumed.end(),
            [&consumed](std::size_t pos) { return consumed[pos]; });
        if (overlaps) continue;
        for (std::size_t pos : m.consumed) consumed[pos] = true;
        applied.emplace_back(m.consumed.back(), &m);
    }

    for (std::size_t pos = 0; pos < rp.preds.size(); ++pos) {
        for (const auto& [anchor, match] : applied) {
            if (anchor == pos) {
                out.items.push_back(match->quantified);
                ++out.templates_applied;
                out.template_names.push_back(match->template_name);
            }
        }
        if (!consumed[pos]) {
            out.items.push_back(make_atom(rp.preds[pos].expr));
        }
    }
    return out;
}

}  // namespace preinfer::core
