#include "src/core/generalize.h"

#include <algorithm>

#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace preinfer::core {

namespace {

void count_template_decision(bool applied) {
    if (!support::metrics_enabled()) return;
    auto& registry = support::MetricsRegistry::global();
    static auto& m_applied = registry.counter("generalize.templates_applied");
    static auto& m_rejected = registry.counter("generalize.templates_rejected");
    (applied ? m_applied : m_rejected).add();
}

}  // namespace

GeneralizedPath generalize(sym::ExprPool& pool, const TemplateRegistry& registry,
                           const ReducedPath& rp, solver::Solver* equivalence_solver) {
    GeneralizedPath out;
    out.original = rp.original;

    // Best match per collection. Templates that do not match at all are not
    // traced (no candidate existed); candidates beaten on score are.
    std::vector<TemplateMatch> matches;
    for (const CollectionInfo& info : analyze_collections(pool, rp)) {
        std::optional<TemplateMatch> best;
        for (const auto& tmpl : registry.templates()) {
            auto m = tmpl->try_match(pool, rp, info, equivalence_solver);
            if (!m) continue;
            if (!best || m->score > best->score) {
                if (best && support::trace_active()) {
                    support::TraceEvent(support::TraceEventKind::TemplateRejected)
                        .field("template", best->template_name)
                        .field("reason", "score")
                        .field("score", best->score)
                        .emit();
                }
                if (best) count_template_decision(/*applied=*/false);
                best = std::move(m);
            } else {
                if (support::trace_active()) {
                    support::TraceEvent(support::TraceEventKind::TemplateRejected)
                        .field("template", m->template_name)
                        .field("reason", "score")
                        .field("score", m->score)
                        .emit();
                }
                count_template_decision(/*applied=*/false);
            }
        }
        if (best) matches.push_back(std::move(*best));
    }

    // Greedily apply non-overlapping matches, strongest first.
    std::sort(matches.begin(), matches.end(),
              [](const TemplateMatch& a, const TemplateMatch& b) {
                  return a.score > b.score;
              });
    std::vector<bool> consumed(rp.preds.size(), false);
    // anchor position -> quantified predicate inserted there
    std::vector<std::pair<std::size_t, const TemplateMatch*>> applied;
    for (const TemplateMatch& m : matches) {
        const bool overlaps = std::any_of(
            m.consumed.begin(), m.consumed.end(),
            [&consumed](std::size_t pos) { return consumed[pos]; });
        if (overlaps) {
            if (support::trace_active()) {
                support::TraceEvent(support::TraceEventKind::TemplateRejected)
                    .field("template", m.template_name)
                    .field("reason", "overlap")
                    .field("score", m.score)
                    .emit();
            }
            count_template_decision(/*applied=*/false);
            continue;
        }
        for (std::size_t pos : m.consumed) consumed[pos] = true;
        if (support::trace_active()) {
            support::TraceEvent(support::TraceEventKind::TemplateApplied)
                .field("template", m.template_name)
                .field("score", m.score)
                .field("consumed", m.consumed.size())
                .field("pred",
                       to_string(m.quantified, support::trace_param_names()))
                .emit();
        }
        count_template_decision(/*applied=*/true);
        applied.emplace_back(m.consumed.back(), &m);
    }

    for (std::size_t pos = 0; pos < rp.preds.size(); ++pos) {
        for (const auto& [anchor, match] : applied) {
            if (anchor == pos) {
                out.items.push_back(match->quantified);
                ++out.templates_applied;
                out.template_names.push_back(match->template_name);
            }
        }
        if (!consumed[pos]) {
            out.items.push_back(make_atom(rp.preds[pos].expr));
        }
    }
    return out;
}

}  // namespace preinfer::core
