#include "src/core/path_condition.h"

#include "src/sym/print.h"

namespace preinfer::core {

const char* exception_kind_name(ExceptionKind k) {
    switch (k) {
        case ExceptionKind::None: return "None";
        case ExceptionKind::NullReference: return "NullReference";
        case ExceptionKind::IndexOutOfRange: return "IndexOutOfRange";
        case ExceptionKind::DivideByZero: return "DivideByZero";
        case ExceptionKind::AssertionViolation: return "AssertionViolation";
    }
    return "?";
}

bool PathCondition::reaches(AclId acl) const { return reaches_after(acl, -1); }

bool PathCondition::reaches_after(AclId acl, int after) const {
    for (const AclVisit& v : visits) {
        if (v.acl == acl && v.position > after) return true;
    }
    return false;
}

std::uint64_t PathCondition::signature() const {
    std::uint64_t h = 1469598103934665603ULL;
    auto mix = [&h](std::uint64_t v) {
        h ^= v;
        h *= 1099511628211ULL;
    };
    for (const PathPredicate& p : preds) {
        // Hash the pool's structural id, never the pointer: node addresses
        // change across processes (ASLR) and across pools, which would make
        // duplicate-path statistics irreproducible and the signature
        // useless as a cache key.
        mix(p.expr->id);
        mix(static_cast<std::uint64_t>(p.site_id));
    }
    return h;
}

std::string to_string(const PathCondition& pc, std::span<const std::string> param_names) {
    std::string out;
    for (std::size_t i = 0; i < pc.preds.size(); ++i) {
        if (i > 0) out += " && ";
        out += sym::to_string(pc.preds[i].expr, param_names);
    }
    if (out.empty()) out = "true";
    return out;
}

}  // namespace preinfer::core
