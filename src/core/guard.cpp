#include "src/core/guard.h"

#include "src/core/pred_eval.h"
#include "src/exec/input.h"

namespace preinfer::core {

PreconditionGuard::PreconditionGuard(sym::ExprPool& pool, const lang::Method& method,
                                     PredPtr precondition, exec::ExecLimits limits,
                                     const lang::Program* program,
                                     exec::Backend backend)
    : method_(method),
      precondition_(std::move(precondition)),
      interpreter_(exec::make_executor(backend, pool, method, limits, program)) {}

GuardedRun PreconditionGuard::invoke(const exec::Input& input) const {
    const exec::InputEvalEnv env(method_, input);
    if (!eval_pred(precondition_, env)) {
        return {GuardedRun::Status::Rejected, {}};
    }
    GuardedRun out;
    out.run = interpreter_->run(input);
    out.status = out.run.outcome.failing() ? GuardedRun::Status::Escaped
                                           : GuardedRun::Status::Completed;
    return out;
}

PreconditionGuard::Stats PreconditionGuard::run_batch(
    std::span<const exec::Input> inputs) const {
    Stats stats;
    for (const exec::Input& input : inputs) {
        switch (invoke(input).status) {
            case GuardedRun::Status::Rejected: ++stats.rejected; break;
            case GuardedRun::Status::Completed: ++stats.completed; break;
            case GuardedRun::Status::Escaped: ++stats.escaped; break;
        }
    }
    return stats;
}

}  // namespace preinfer::core
