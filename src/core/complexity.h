#pragma once

#include "src/core/pred.h"

namespace preinfer::core {

/// Complexity |ψ| (Definition 3): the number of logical connectives and
/// quantifiers in ψ. Connectives inside atoms (a quantifier body like
/// `i < s.len || s[i] == 0` contains an Or) count too; comparisons and
/// arithmetic do not. An n-ary And/Or contributes n-1.
[[nodiscard]] int complexity(const PredPtr& p);

/// Connectives in a plain expression (used for atoms / quantifier parts).
[[nodiscard]] int expr_connectives(const sym::Expr* e);

/// Relative complexity of an inferred precondition against the ground
/// truth (Section V-B): (|ψ| - |ψ*|) / |ψ*|. When the ground truth has
/// complexity 0, the denominator is taken as 1 so the metric stays finite.
[[nodiscard]] double relative_complexity(const PredPtr& inferred,
                                         const PredPtr& ground_truth);

}  // namespace preinfer::core
