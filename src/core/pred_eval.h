#pragma once

#include "src/core/pred.h"
#include "src/sym/eval.h"

namespace preinfer::core {

/// Kleene three-valued truth: Undef marks atoms whose evaluation is partial
/// on this state (out-of-bounds element access, observer applied to null).
enum class Tri : std::uint8_t { False, Undef, True };

/// Three-valued evaluation of a precondition against a method-entry state:
///  * atoms evaluate to Undef when partial;
///  * connectives follow Kleene logic (False dominates And, True dominates
///    Or, negation maps Undef to Undef);
///  * quantifiers over a null collection are vacuous (Forall true, Exists
///    false); an Undef domain or body contaminates the result to Undef
///    unless a decisive witness exists;
///  * the bound variable ranges over 0 <= i < obj.len beyond the explicit
///    domain predicate.
[[nodiscard]] Tri eval_pred_3v(const PredPtr& p, const sym::EvalEnv& env);

/// Two-valued projection used by the metrics: Undef counts as FALSE — a
/// precondition that cannot even be evaluated on a state certainly does not
/// validate it.
[[nodiscard]] bool eval_pred(const PredPtr& p, const sym::EvalEnv& env);

}  // namespace preinfer::core
