#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "src/sym/expr_pool.h"

namespace preinfer::core {

/// Precondition formulas (Definition 3). Atoms are quantifier-free symbolic
/// expressions over method inputs; quantifiers bind one integer index
/// variable ranging over [0, bound_obj.len):
///
///   Forall:  ∀ i ∈ [0, |obj|). domain(i) -> body(i)
///   Exists:  ∃ i ∈ [0, |obj|). domain(i) && body(i)
///
/// which are exactly the paper's Universal / Existential template shapes
/// (domain restricts eligible indices; body is the violated property).
enum class PredKind : std::uint8_t { Atom, And, Or, Not, Forall, Exists };

struct Pred;
using PredPtr = std::shared_ptr<const Pred>;

struct Pred {
    PredKind kind = PredKind::Atom;

    const sym::Expr* atom = nullptr;      ///< Atom
    std::vector<PredPtr> kids;            ///< And / Or (n-ary), Not (exactly 1)

    int bound_id = -1;                    ///< quantifiers: BoundVar id
    const sym::Expr* bound_obj = nullptr; ///< quantifiers: collection whose length bounds i
    const sym::Expr* domain = nullptr;    ///< quantifiers: Bool expr over the bound var
    const sym::Expr* body = nullptr;      ///< quantifiers: Bool expr over the bound var

    [[nodiscard]] bool is_quantifier() const {
        return kind == PredKind::Forall || kind == PredKind::Exists;
    }
};

// --- constructors (flatten / fold trivialities) ---------------------------
[[nodiscard]] PredPtr make_atom(const sym::Expr* e);
[[nodiscard]] PredPtr make_true();
[[nodiscard]] PredPtr make_false();
/// n-ary conjunction; flattens nested Ands, drops `true`, collapses on `false`.
[[nodiscard]] PredPtr make_and(std::vector<PredPtr> kids);
/// n-ary disjunction; flattens nested Ors, drops `false`, collapses on `true`.
[[nodiscard]] PredPtr make_or(std::vector<PredPtr> kids);
[[nodiscard]] PredPtr make_not(PredPtr p);
[[nodiscard]] PredPtr make_forall(int bound_id, const sym::Expr* bound_obj,
                                  const sym::Expr* domain, const sym::Expr* body);
[[nodiscard]] PredPtr make_exists(int bound_id, const sym::Expr* bound_obj,
                                  const sym::Expr* domain, const sym::Expr* body);

/// True/false literals are Atom(BoolConst).
[[nodiscard]] bool is_true(const PredPtr& p);
[[nodiscard]] bool is_false(const PredPtr& p);

/// Structural equality (atoms by interned pointer; quantifiers up to the
/// bound variable id, which is α-renamed before comparison).
[[nodiscard]] bool pred_equal(const PredPtr& a, const PredPtr& b);

/// Logical negation pushed inward (De Morgan; ¬∀(D→B) = ∃(D ∧ ¬B);
/// ¬∃(D∧B) = ∀(D→¬B); atoms via ExprPool::negate). This keeps inferred
/// preconditions in the positive, readable form the paper prints.
[[nodiscard]] PredPtr negate(sym::ExprPool& pool, const PredPtr& p);

/// Infix rendering, paper style: quantifiers as
/// "forall i. (i < s.len) => (s[i] != null)".
[[nodiscard]] std::string to_string(const PredPtr& p,
                                    std::span<const std::string> param_names = {});

}  // namespace preinfer::core
