#include "src/core/preinfer.h"

#include <algorithm>
#include <memory>
#include <unordered_set>

#include "src/core/pred_eval.h"
#include "src/solver/solver.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"

namespace preinfer::core {

namespace {

PredPtr conjunction_of(const PathCondition& pc) {
    std::vector<PredPtr> kids;
    kids.reserve(pc.preds.size());
    for (const PathPredicate& p : pc.preds) kids.push_back(make_atom(p.expr));
    return make_and(std::move(kids));
}

PredPtr conjunction_of(const ReducedPath& rp) {
    std::vector<PredPtr> kids;
    kids.reserve(rp.preds.size());
    for (const PathPredicate& p : rp.preds) kids.push_back(make_atom(p.expr));
    return make_and(std::move(kids));
}

bool admits_any(const PredPtr& pred, std::span<const sym::EvalEnv* const> envs) {
    return std::any_of(envs.begin(), envs.end(), [&pred](const sym::EvalEnv* env) {
        return eval_pred(pred, *env);
    });
}

}  // namespace

PreInfer::PreInfer(sym::ExprPool& pool, PreInferConfig config,
                   const TemplateRegistry* registry, WitnessOracle* oracle)
    : pool_(pool),
      config_(config),
      default_registry_(TemplateRegistry::standard()),
      registry_(registry ? registry : &default_registry_),
      oracle_(oracle) {}

InferenceResult PreInfer::infer(AclId acl, std::vector<const PathCondition*> failing,
                                std::vector<const PathCondition*> passing,
                                std::span<const sym::EvalEnv* const> passing_envs) {
    InferenceResult result;
    result.failing_paths = static_cast<int>(failing.size());
    if (failing.empty()) return result;

    std::unique_ptr<solver::Solver> equivalence_solver;
    if (config_.semantic_template_matching) {
        equivalence_solver = std::make_unique<solver::Solver>(pool_);
    }

    PredicatePruner pruner(pool_, acl, failing, passing, config_.pruning, oracle_);
    const std::vector<ReducedPath> reduced = pruner.prune_all();
    result.pruning = pruner.stats();

    std::vector<PredPtr> disjuncts;
    disjuncts.reserve(reduced.size());
    for (const ReducedPath& rp : reduced) {
        // Stage 1: the pruned conjunction. If the available passing states
        // expose an over-pruning (a passing state satisfying the disjunct),
        // restore pruned predicates greedily — deepest-branch first, the
        // order the pruner removed them — until no passing state satisfies
        // the disjunct. The full original path condition (disjoint from
        // every passing path by construction) is the last resort.
        PredPtr stage1 = conjunction_of(rp);
        ReducedPath effective = rp;
        if (config_.verify_against_passing && admits_any(stage1, passing_envs)) {
            ++result.pruning_fallbacks;
            std::unordered_set<const sym::Expr*> keep;
            for (const PathPredicate& p : rp.preds) keep.insert(p.expr);

            bool repaired = false;
            int restored_count = 0;
            for (const PathPredicate& back : rp.pruned) {
                keep.insert(back.expr);
                ++restored_count;
                // Re-project onto the original path so predicate order (and
                // the trailing assertion-violating condition) is preserved
                // for the generalization stage.
                std::vector<PathPredicate> restored;
                for (const PathPredicate& p : rp.original->preds) {
                    if (keep.count(p.expr) > 0) restored.push_back(p);
                }
                std::vector<PredPtr> kids;
                kids.reserve(restored.size());
                for (const PathPredicate& p : restored) kids.push_back(make_atom(p.expr));
                PredPtr candidate = make_and(std::move(kids));
                if (!admits_any(candidate, passing_envs)) {
                    stage1 = std::move(candidate);
                    effective.preds = std::move(restored);
                    repaired = true;
                    break;
                }
            }
            if (!repaired) {
                // Last resort: the original path condition verbatim, which
                // is disjoint from every passing path by construction.
                stage1 = conjunction_of(*rp.original);
                effective.preds = rp.original->preds;
            }
            if (support::trace_active()) {
                support::TraceEvent(support::TraceEventKind::PruningFallback)
                    .field("disjunct", disjuncts.size())
                    .field("repair", repaired ? "restored" : "original")
                    .field("restored",
                           repaired ? restored_count
                                    : static_cast<int>(rp.pruned.size()))
                    .emit();
            }
            if (support::metrics_enabled()) {
                static auto& m_fallbacks = support::MetricsRegistry::global().counter(
                    "preinfer.pruning_fallbacks");
                m_fallbacks.add();
            }
        }

        // Stage 2: collection-element generalization over the (possibly
        // restored) reduced path; revert if it captures a passing state.
        PredPtr chosen = stage1;
        if (config_.generalization_enabled) {
            const GeneralizedPath gp =
                generalize(pool_, *registry_, effective, equivalence_solver.get());
            if (gp.templates_applied > 0) {
                PredPtr stage2 = gp.to_pred();
                if (config_.verify_against_passing &&
                    admits_any(stage2, passing_envs)) {
                    ++result.generalization_fallbacks;
                    if (support::trace_active()) {
                        support::TraceEvent(
                            support::TraceEventKind::GeneralizationFallback)
                            .field("disjunct", disjuncts.size())
                            .emit();
                    }
                    if (support::metrics_enabled()) {
                        static auto& m_gen_fallbacks =
                            support::MetricsRegistry::global().counter(
                                "preinfer.generalization_fallbacks");
                        m_gen_fallbacks.add();
                    }
                } else {
                    chosen = std::move(stage2);
                    ++result.generalized_paths;
                    for (const char* n : gp.template_names)
                        result.template_uses.emplace_back(n);
                }
            }
        }
        if (support::trace_active()) {
            // The simplifier removes duplicate disjuncts when building
            // alpha; record here which disjunct survives and which merely
            // repeats an earlier one, so the trace explains the final
            // disjunct count.
            std::size_t duplicate_of = disjuncts.size();
            for (std::size_t d = 0; d < disjuncts.size(); ++d) {
                if (pred_equal(disjuncts[d], chosen)) {
                    duplicate_of = d;
                    break;
                }
            }
            if (duplicate_of < disjuncts.size()) {
                support::TraceEvent(support::TraceEventKind::DisjunctDuplicate)
                    .field("disjunct", disjuncts.size())
                    .field("duplicate_of", duplicate_of)
                    .emit();
            } else {
                support::TraceEvent(support::TraceEventKind::DisjunctEmitted)
                    .field("disjunct", disjuncts.size())
                    .field("pred",
                           to_string(chosen, support::trace_param_names()))
                    .emit();
            }
        }
        disjuncts.push_back(std::move(chosen));
    }

    if (support::metrics_enabled()) {
        auto& registry = support::MetricsRegistry::global();
        static auto& m_inferences = registry.counter("preinfer.inferences");
        static auto& m_disjuncts = registry.counter("preinfer.disjuncts");
        m_inferences.add();
        m_disjuncts.add(static_cast<std::int64_t>(disjuncts.size()));
    }
    result.alpha = simplify(pool_, make_or(std::move(disjuncts)));
    result.precondition = simplify(pool_, negate(pool_, result.alpha));
    result.inferred = true;
    return result;
}

}  // namespace preinfer::core
