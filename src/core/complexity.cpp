#include "src/core/complexity.h"

#include <cmath>

#include "src/support/diagnostics.h"

namespace preinfer::core {

int expr_connectives(const sym::Expr* e) {
    if (e == nullptr) return 0;
    int count = sym::is_connective(e->kind) ? 1 : 0;
    if (e->child0) count += expr_connectives(e->child0);
    if (e->child1) count += expr_connectives(e->child1);
    return count;
}

int complexity(const PredPtr& p) {
    switch (p->kind) {
        case PredKind::Atom:
            return p->atom ? expr_connectives(p->atom) : 0;
        case PredKind::And:
        case PredKind::Or: {
            int count = static_cast<int>(p->kids.size()) - 1;
            for (const PredPtr& k : p->kids) count += complexity(k);
            return count;
        }
        case PredKind::Not:
            return 1 + complexity(p->kids[0]);
        case PredKind::Forall:
        case PredKind::Exists:
            // One quantifier, one implicit connective joining domain and
            // body (-> or &&), plus whatever the two parts contain.
            return 2 + expr_connectives(p->domain) + expr_connectives(p->body);
    }
    PI_CHECK(false, "unhandled pred kind");
    return 0;
}

double relative_complexity(const PredPtr& inferred, const PredPtr& ground_truth) {
    const int got = complexity(inferred);
    const int want = complexity(ground_truth);
    const double denom = want == 0 ? 1.0 : static_cast<double>(want);
    return static_cast<double>(got - want) / denom;
}

}  // namespace preinfer::core
