#pragma once

#include "src/solver/solver.h"
#include "src/sym/expr_pool.h"

namespace preinfer::core {

/// Semantic equivalence of two boolean predicate shapes (possibly over the
/// quantifier bound variable), decided with the constraint solver:
/// a ≡ b iff both a ∧ ¬b and ¬a ∧ b are unsatisfiable. The bound variable
/// is treated as a fresh unconstrained integer; Select terms indexed by it
/// act as uninterpreted applications, which is exactly what deciding
/// shape equivalence needs.
///
/// This implements the improvement the paper proposes for its template
/// matching: "use a constraint solver to help determine predicate
/// equivalence instead of using the raw string representations of the
/// predicates" (Section V-C). Returns false on Unknown (conservative).
[[nodiscard]] bool semantically_equal(sym::ExprPool& pool, solver::Solver& solver,
                                      const sym::Expr* a, const sym::Expr* b);

}  // namespace preinfer::core
