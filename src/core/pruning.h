#pragma once

#include <optional>

#include "src/core/path_condition.h"
#include "src/sym/expr_pool.h"

namespace preinfer::core {

/// How the pruner gathers the deviating-path evidence that Definitions 5-6
/// require.
enum class PruningMode : std::uint8_t {
    /// Use only the path conditions already in the test suite (the paper's
    /// formulation: "considers another prefix-sharing path condition from
    /// an available passing test"). Predicates with no evidence stay kept.
    TestSuiteOnly,
    /// Additionally ask the DSE engine to *generate* the deviating witness
    /// on demand (what a tight Pex integration provides). Strictly more
    /// pruning power; compared in the ablation bench.
    SolverAssisted,
};

/// On-demand witness generation: solve `conjuncts` and execute the model.
/// Implemented over gen::Explorer by the evaluation harness.
class WitnessOracle {
public:
    struct Witness {
        const PathCondition* pc = nullptr;  ///< stays valid for the oracle's lifetime
        bool failing = false;
        AclId acl;  ///< valid iff failing
    };

    virtual ~WitnessOracle() = default;
    [[nodiscard]] virtual std::optional<Witness> witness(
        std::span<const sym::Expr* const> conjuncts) = 0;
};

struct PruningConfig {
    PruningMode mode = PruningMode::TestSuiteOnly;
    int max_oracle_calls = 512;  ///< per prune_all() invocation
};

/// A failing path condition after dynamic predicate pruning; predicates
/// keep their original order and the last one is still the
/// assertion-violating condition. `pruned` holds the removed predicates in
/// pruning order (deepest branch first) so that the verification step can
/// restore them one at a time when the available evidence over-pruned.
struct ReducedPath {
    const PathCondition* original = nullptr;
    std::vector<PathPredicate> preds;
    std::vector<PathPredicate> pruned;
};

struct PruningStats {
    int predicates_before = 0;
    int predicates_after = 0;
    int kept_c_depend = 0;   ///< kept because no deviating path reaches the ACL
    int kept_d_impact = 0;   ///< kept because a deviating path changes the last expr
    int pruned = 0;
    int oracle_calls = 0;
};

/// Algorithm 1 (dynamic predicate pruning). For each failing path condition
/// the predicates are examined backwards from the last-branch predicate; a
/// predicate φ_j is kept iff it is in a c-depend relation (every observed
/// deviating prefix-sharing path fails to reach the ACL — location
/// reachability, Definition 5) or a d-impact relation (some deviating
/// prefix-sharing failing path reaches the ACL with a *different*
/// assertion-violating expression — expression preservation, Definition 6).
/// Pruned and kept predicates are removed from all paths' working copies so
/// prefix alignment is preserved as the walk proceeds, mirroring the SP
/// bookkeeping in the paper's pseudocode.
class PredicatePruner {
public:
    PredicatePruner(sym::ExprPool& pool, AclId acl,
                    std::vector<const PathCondition*> failing,
                    std::vector<const PathCondition*> passing,
                    PruningConfig config = {}, WitnessOracle* oracle = nullptr);

    /// Prunes every failing path condition (independently, one at a time).
    [[nodiscard]] std::vector<ReducedPath> prune_all();

    /// Prunes a single failing path condition (must be one of `failing`).
    [[nodiscard]] ReducedPath prune(const PathCondition& pf);

    [[nodiscard]] const PruningStats& stats() const { return stats_; }

private:
    sym::ExprPool& pool_;
    AclId acl_;
    std::vector<const PathCondition*> failing_;
    std::vector<const PathCondition*> passing_;
    PruningConfig config_;
    WitnessOracle* oracle_;
    PruningStats stats_;
};

}  // namespace preinfer::core
