#pragma once

#include "src/core/templates.h"

namespace preinfer::core {

/// A reduced path condition after collection-element generalization: an
/// ordered mix of surviving atoms and quantified predicates that replaced
/// runs of overly specific predicates.
struct GeneralizedPath {
    const PathCondition* original = nullptr;
    std::vector<PredPtr> items;
    int templates_applied = 0;
    std::vector<const char*> template_names;

    /// The conjunction ρ'_fi used as one disjunct of α.
    [[nodiscard]] PredPtr to_pred() const { return make_and(items); }
};

/// Applies the registry's templates to one reduced path. Per collection,
/// the highest-scoring match wins ("we choose a candidate C based on the
/// number of subsumed overly specific predicates"); matches over different
/// collections compose as long as their consumed predicate sets do not
/// overlap. The quantified predicate replaces the consumed run at the
/// position of its last consumed predicate, so an existential pivot stays
/// the final (assertion-violating) item.
[[nodiscard]] GeneralizedPath generalize(sym::ExprPool& pool,
                                         const TemplateRegistry& registry,
                                         const ReducedPath& rp,
                                         solver::Solver* equivalence_solver = nullptr);

}  // namespace preinfer::core
