#include "src/core/simplify.h"

#include <algorithm>
#include <limits>
#include <optional>

#include "src/support/diagnostics.h"

namespace preinfer::core {

namespace {

/// The members of an And/Or node (a lone pred is its own single member).
std::vector<PredPtr> members(const PredPtr& p, PredKind kind) {
    if (p->kind == kind) return p->kids;
    return {p};
}

bool contains_pred(const std::vector<PredPtr>& set, const PredPtr& p) {
    return std::any_of(set.begin(), set.end(),
                       [&p](const PredPtr& q) { return pred_equal(p, q); });
}

/// True iff every member of `a` appears in `b`.
bool subset_of(const std::vector<PredPtr>& a, const std::vector<PredPtr>& b) {
    return std::all_of(a.begin(), a.end(),
                       [&b](const PredPtr& p) { return contains_pred(b, p); });
}

std::vector<PredPtr> dedup(const std::vector<PredPtr>& kids) {
    std::vector<PredPtr> out;
    for (const PredPtr& k : kids) {
        if (!contains_pred(out, k)) out.push_back(k);
    }
    return out;
}

bool complementary(sym::ExprPool& pool, const PredPtr& a, const PredPtr& b) {
    if (a->kind == PredKind::Atom && b->kind == PredKind::Atom && a->atom && b->atom) {
        return pool.negate(a->atom) == b->atom;
    }
    if (a->kind == PredKind::Not) return pred_equal(a->kids[0], b);
    if (b->kind == PredKind::Not) return pred_equal(b->kids[0], a);
    return false;
}

// --- interval arithmetic over integer terms ---------------------------------

constexpr std::int64_t kNoLo = std::numeric_limits<std::int64_t>::min();
constexpr std::int64_t kNoHi = std::numeric_limits<std::int64_t>::max();

struct Interval {
    std::int64_t lo = kNoLo;
    std::int64_t hi = kNoHi;

    [[nodiscard]] bool empty() const { return lo > hi; }
    [[nodiscard]] bool unconstrained() const { return lo == kNoLo && hi == kNoHi; }
};

std::int64_t sat_inc(std::int64_t v) { return v == kNoHi ? v : v + 1; }
std::int64_t sat_dec(std::int64_t v) { return v == kNoLo ? v : v - 1; }

/// Recognizes an atom as `term REL constant`, returning the term and the
/// integer interval of term values satisfying it. Disequalities are not
/// intervals and pass through untouched.
struct TermBound {
    const sym::Expr* term = nullptr;
    Interval iv;
};

std::optional<TermBound> atom_interval(const PredPtr& p) {
    if (p->kind != PredKind::Atom || p->atom == nullptr) return std::nullopt;
    const sym::Expr* e = p->atom;
    if (!sym::is_comparison(e->kind) || e->kind == sym::Kind::Ne) return std::nullopt;
    const sym::Expr* l = e->child0;
    const sym::Expr* r = e->child1;
    const bool l_const = l->kind == sym::Kind::IntConst;
    const bool r_const = r->kind == sym::Kind::IntConst;
    if (l_const == r_const) return std::nullopt;  // need exactly one constant side

    const sym::Expr* term = l_const ? r : l;
    const std::int64_t c = l_const ? l->a : r->a;
    sym::Kind op = e->kind;
    if (l_const) {
        // c REL term  ==>  term REL' c
        switch (op) {
            case sym::Kind::Lt: op = sym::Kind::Gt; break;
            case sym::Kind::Le: op = sym::Kind::Ge; break;
            case sym::Kind::Gt: op = sym::Kind::Lt; break;
            case sym::Kind::Ge: op = sym::Kind::Le; break;
            default: break;
        }
    }
    TermBound tb;
    tb.term = term;
    switch (op) {
        case sym::Kind::Eq: tb.iv = {c, c}; break;
        case sym::Kind::Lt: tb.iv = {kNoLo, sat_dec(c)}; break;
        case sym::Kind::Le: tb.iv = {kNoLo, c}; break;
        case sym::Kind::Gt: tb.iv = {sat_inc(c), kNoHi}; break;
        case sym::Kind::Ge: tb.iv = {c, kNoHi}; break;
        default: return std::nullopt;
    }
    return tb;
}

/// Emits the minimal atoms describing `term in iv` (never called on empty
/// or unconstrained intervals).
std::vector<PredPtr> interval_atoms(sym::ExprPool& pool, const sym::Expr* term,
                                    const Interval& iv) {
    std::vector<PredPtr> out;
    if (iv.lo == iv.hi) {
        out.push_back(make_atom(pool.eq(term, pool.int_const(iv.lo))));
        return out;
    }
    if (iv.lo != kNoLo) out.push_back(make_atom(pool.ge(term, pool.int_const(iv.lo))));
    if (iv.hi != kNoHi) out.push_back(make_atom(pool.le(term, pool.int_const(iv.hi))));
    return out;
}

/// Intersects all interval atoms of a conjunction per term. Returns nullopt
/// when the conjunction is untouched; make_false() when an interval empties.
std::optional<std::vector<PredPtr>> tighten_bounds(sym::ExprPool& pool,
                                                   const std::vector<PredPtr>& kids,
                                                   bool& contradiction) {
    std::vector<std::pair<const sym::Expr*, Interval>> per_term;
    std::vector<PredPtr> rest;
    int interval_atom_count = 0;
    for (const PredPtr& k : kids) {
        if (const auto tb = atom_interval(k)) {
            ++interval_atom_count;
            bool found = false;
            for (auto& [term, iv] : per_term) {
                if (term == tb->term) {
                    iv.lo = std::max(iv.lo, tb->iv.lo);
                    iv.hi = std::min(iv.hi, tb->iv.hi);
                    found = true;
                }
            }
            if (!found) per_term.emplace_back(tb->term, tb->iv);
        } else {
            rest.push_back(k);
        }
    }
    if (interval_atom_count == static_cast<int>(per_term.size())) {
        return std::nullopt;  // one atom per term: nothing to tighten
    }
    std::vector<PredPtr> out = std::move(rest);
    for (const auto& [term, iv] : per_term) {
        if (iv.empty()) {
            contradiction = true;
            return std::vector<PredPtr>{};
        }
        for (PredPtr& a : interval_atoms(pool, term, iv)) out.push_back(std::move(a));
    }
    return out;
}

/// Merges disjuncts that are pure intervals over one shared term
/// (overlapping or integer-adjacent). Returns nullopt when fewer than two
/// disjuncts merge.
std::optional<std::vector<PredPtr>> union_intervals(sym::ExprPool& pool,
                                                    const std::vector<PredPtr>& kids) {
    struct Group {
        const sym::Expr* term;
        std::vector<Interval> ivs;
    };
    std::vector<Group> groups;
    std::vector<PredPtr> rest;

    for (const PredPtr& k : kids) {
        // A disjunct qualifies when every conjunct is an interval atom on
        // one single term.
        const std::vector<PredPtr> members =
            k->kind == PredKind::And ? k->kids : std::vector<PredPtr>{k};
        const sym::Expr* term = nullptr;
        Interval iv;
        bool pure = !members.empty();
        for (const PredPtr& m : members) {
            const auto tb = atom_interval(m);
            if (!tb || (term && tb->term != term)) {
                pure = false;
                break;
            }
            term = tb->term;
            iv.lo = std::max(iv.lo, tb->iv.lo);
            iv.hi = std::min(iv.hi, tb->iv.hi);
        }
        if (!pure || term == nullptr) {
            rest.push_back(k);
            continue;
        }
        bool found = false;
        for (Group& g : groups) {
            if (g.term == term) {
                g.ivs.push_back(iv);
                found = true;
            }
        }
        if (!found) groups.push_back({term, {iv}});
    }

    bool merged_any = false;
    std::vector<PredPtr> out = std::move(rest);
    for (Group& g : groups) {
        std::sort(g.ivs.begin(), g.ivs.end(),
                  [](const Interval& a, const Interval& b) { return a.lo < b.lo; });
        std::vector<Interval> merged;
        for (const Interval& iv : g.ivs) {
            if (iv.empty()) continue;
            if (!merged.empty() && iv.lo <= sat_inc(merged.back().hi)) {
                merged.back().hi = std::max(merged.back().hi, iv.hi);
                merged_any = merged_any || true;
            } else {
                merged.push_back(iv);
            }
        }
        if (merged.size() < g.ivs.size()) merged_any = true;
        for (const Interval& iv : merged) {
            if (iv.unconstrained()) return std::vector<PredPtr>{make_true()};
            out.push_back(make_and(interval_atoms(pool, g.term, iv)));
        }
    }
    if (!merged_any) return std::nullopt;
    return out;
}

}  // namespace

PredPtr simplify(sym::ExprPool& pool, const PredPtr& p) {
    switch (p->kind) {
        case PredKind::Atom:
        case PredKind::Forall:
        case PredKind::Exists:
            return p;
        case PredKind::Not:
            return make_not(simplify(pool, p->kids[0]));
        case PredKind::And:
        case PredKind::Or: {
            const bool is_and = p->kind == PredKind::And;
            std::vector<PredPtr> kids;
            kids.reserve(p->kids.size());
            for (const PredPtr& k : p->kids) kids.push_back(simplify(pool, k));
            kids = dedup(kids);

            // p && !p => false;  p || !p => true.
            for (std::size_t i = 0; i < kids.size(); ++i) {
                for (std::size_t j = i + 1; j < kids.size(); ++j) {
                    if (complementary(pool, kids[i], kids[j])) {
                        return is_and ? make_false() : make_true();
                    }
                }
            }

            // Interval reasoning: intersect constant bounds inside a
            // conjunction; union pure interval disjuncts.
            if (is_and) {
                bool contradiction = false;
                if (auto tightened = tighten_bounds(pool, kids, contradiction)) {
                    if (contradiction) return make_false();
                    kids = dedup(*tightened);
                }
            } else {
                if (auto unioned = union_intervals(pool, kids)) {
                    kids = dedup(*unioned);
                    for (const PredPtr& k : kids) {
                        if (is_true(k)) return make_true();
                    }
                }
            }

            // Subsumption between composite members. In an Or, a disjunct
            // whose conjunct set contains another disjunct's set is
            // stronger and therefore implied: drop it. In an And, a clause
            // whose disjunct set contains another clause's set is weaker
            // and therefore implied: drop it. Both cases drop the superset.
            const PredKind inner = is_and ? PredKind::Or : PredKind::And;
            std::vector<bool> dropped(kids.size(), false);
            for (std::size_t i = 0; i < kids.size(); ++i) {
                if (dropped[i]) continue;
                const auto mi = members(kids[i], inner);
                for (std::size_t j = 0; j < kids.size(); ++j) {
                    if (i == j || dropped[j] || dropped[i]) continue;
                    const auto mj = members(kids[j], inner);
                    if (mi.size() < mj.size() && subset_of(mi, mj)) {
                        dropped[j] = true;
                    }
                }
            }
            std::vector<PredPtr> final_kids;
            for (std::size_t i = 0; i < kids.size(); ++i) {
                if (!dropped[i]) final_kids.push_back(kids[i]);
            }
            return is_and ? make_and(std::move(final_kids))
                          : make_or(std::move(final_kids));
        }
    }
    PI_CHECK(false, "unhandled pred kind");
    return nullptr;
}

}  // namespace preinfer::core
