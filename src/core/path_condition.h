#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "src/support/source_location.h"
#include "src/sym/expr.h"

namespace preinfer::core {

/// Exception classes raised by MiniLang executions. The first three are
/// implicit checks inserted by the runtime (as Pex does on .NET); the last
/// is an explicitly written `assert`.
enum class ExceptionKind : std::uint8_t {
    None,                ///< marks ordinary program branches
    NullReference,
    IndexOutOfRange,
    DivideByZero,
    AssertionViolation,
};

[[nodiscard]] const char* exception_kind_name(ExceptionKind k);

/// An assertion-containing location (Definition 2): the AST node performing
/// a check, qualified by which check it is (one array access carries both a
/// null check and a bounds check).
struct AclId {
    int node_id = -1;
    ExceptionKind kind = ExceptionKind::None;

    friend bool operator==(const AclId&, const AclId&) = default;
    [[nodiscard]] bool valid() const { return node_id >= 0 && kind != ExceptionKind::None; }
};

struct AclIdHash {
    std::size_t operator()(const AclId& a) const noexcept {
        return std::hash<int>()(a.node_id) * 31u + static_cast<std::size_t>(a.kind);
    }
};

/// One conjunct of a path condition, in "taken" polarity: the expression is
/// true along the executed path. `site_id` identifies the branch (AST node);
/// `check` is None for ordinary branches and names the assertion kind for
/// check-derived predicates — a predicate with `check != None` is evidence
/// that the path *reached* that assertion-containing location.
struct PathPredicate {
    const sym::Expr* expr = nullptr;
    int site_id = -1;
    ExceptionKind check = ExceptionKind::None;
    support::SourceLoc loc;

    [[nodiscard]] bool is_check() const { return check != ExceptionKind::None; }
    [[nodiscard]] AclId acl() const { return {site_id, check}; }
};

/// One arrival at an assertion-containing location during execution.
/// Recorded independently of the predicate stream because a check whose
/// condition constant-folds (e.g. an assert over a concrete loop counter)
/// leaves no predicate behind, yet "the path reaches the location" is
/// exactly what the c-depend relation needs to observe.
struct AclVisit {
    AclId acl;
    /// Number of predicates recorded before the check executed; a visit
    /// happened after predicate index d iff position > d.
    int position = 0;
};

/// A path condition (Section III): the ordered conjunction of branch
/// predicates collected along one execution.
struct PathCondition {
    std::vector<PathPredicate> preds;
    std::vector<AclVisit> visits;

    [[nodiscard]] std::size_t size() const { return preds.size(); }
    [[nodiscard]] bool empty() const { return preds.empty(); }
    [[nodiscard]] const PathPredicate& last() const { return preds.back(); }

    /// True iff the execution arrived at the given ACL at all.
    [[nodiscard]] bool reaches(AclId acl) const;

    /// True iff the execution arrived at the ACL after recording predicate
    /// index `after` (pass -1 for "anywhere").
    [[nodiscard]] bool reaches_after(AclId acl, int after) const;

    /// Hash of the (expr id, site) sequence; identical signature == same
    /// path. Built from structural expression ids, so it is reproducible
    /// across processes and pools that intern the same expression sequence.
    [[nodiscard]] std::uint64_t signature() const;
};

/// Renders "p1 && p2 && ..." using the paper's notation.
[[nodiscard]] std::string to_string(const PathCondition& pc,
                                    std::span<const std::string> param_names = {});

}  // namespace preinfer::core
