#pragma once

#include "src/core/pred.h"
#include "src/exec/executor.h"

namespace preinfer::core {

/// What happened when a guarded method was invoked.
struct GuardedRun {
    enum class Status : std::uint8_t {
        Rejected,   ///< the precondition invalidated the entry state
        Completed,  ///< precondition held and the method ran normally
        Escaped,    ///< precondition held but the method still failed
                    ///< (the precondition was not sufficient)
    };

    Status status = Status::Completed;
    exec::RunResult run;  ///< valid unless status == Rejected
};

/// Runtime monitor implementing the paper's deployment story: "developers
/// can directly insert the preconditions in the method under test to
/// improve its robustness". The guard evaluates the precondition against
/// the entry state and only executes the method when it validates
/// (Undef counts as a rejection — an unevaluable precondition cannot
/// vouch for the state).
class PreconditionGuard {
public:
    /// `program` is required when `method` calls other methods.
    PreconditionGuard(sym::ExprPool& pool, const lang::Method& method,
                      PredPtr precondition, exec::ExecLimits limits = {},
                      const lang::Program* program = nullptr,
                      exec::Backend backend = exec::Backend::IL);

    [[nodiscard]] GuardedRun invoke(const exec::Input& input) const;

    /// Aggregate protection statistics over a batch of entry states:
    /// how many were rejected, how many completed, and how many failures
    /// escaped the guard.
    struct Stats {
        int rejected = 0;
        int completed = 0;
        int escaped = 0;

        [[nodiscard]] int total() const { return rejected + completed + escaped; }
    };
    [[nodiscard]] Stats run_batch(std::span<const exec::Input> inputs) const;

private:
    const lang::Method& method_;
    PredPtr precondition_;
    std::unique_ptr<exec::Executor> interpreter_;
};

}  // namespace preinfer::core
