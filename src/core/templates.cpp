#include "src/core/templates.h"

#include <algorithm>
#include <map>
#include <unordered_map>
#include <unordered_set>

#include "src/core/equiv.h"
#include "src/support/diagnostics.h"
#include "src/sym/rewrite.h"

namespace preinfer::core {

namespace {

using sym::Expr;
using sym::Kind;
using sym::Sort;

/// Linear form of an expression in Len(obj): e == coeff * obj.len + offset.
/// Present only when e mentions no other symbolic leaf.
struct LenAffine {
    std::int64_t coeff = 0;
    std::int64_t offset = 0;
};

std::optional<LenAffine> len_affine(const Expr* e, const Expr* obj) {
    if (e->kind == Kind::Len && e->child0 == obj) return LenAffine{1, 0};
    if (e->kind == Kind::IntConst) return LenAffine{0, e->a};
    switch (e->kind) {
        case Kind::Neg: {
            auto v = len_affine(e->child0, obj);
            if (!v) return std::nullopt;
            return LenAffine{-v->coeff, -v->offset};
        }
        case Kind::Add: case Kind::Sub: {
            auto l = len_affine(e->child0, obj);
            auto r = len_affine(e->child1, obj);
            if (!l || !r) return std::nullopt;
            const std::int64_t s = e->kind == Kind::Add ? 1 : -1;
            return LenAffine{l->coeff + s * r->coeff, l->offset + s * r->offset};
        }
        case Kind::Mul: {
            auto l = len_affine(e->child0, obj);
            auto r = len_affine(e->child1, obj);
            if (!l || !r) return std::nullopt;
            if (l->coeff != 0 && r->coeff != 0) return std::nullopt;
            return LenAffine{l->coeff * r->offset + r->coeff * l->offset,
                             l->offset * r->offset};
        }
        default:
            return std::nullopt;
    }
}

std::int64_t floor_div(std::int64_t a, std::int64_t b) {
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) --q;
    return q;
}
std::int64_t ceil_div(std::int64_t a, std::int64_t b) {
    std::int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) == (b < 0))) ++q;
    return q;
}

/// All distinct constant indices k such that Select(obj, k) occurs in e.
void collect_select_indices(const Expr* e, const Expr* obj,
                            std::unordered_set<std::int64_t>& out, bool& nonconst) {
    if (e->kind == Kind::Select && e->child0 == obj) {
        if (e->child1->kind == Kind::IntConst) {
            out.insert(e->child1->a);
        } else {
            nonconst = true;
        }
    }
    if (e->child0) collect_select_indices(e->child0, obj, out, nonconst);
    if (e->child1) collect_select_indices(e->child1, obj, out, nonconst);
}

}  // namespace

std::vector<CollectionInfo> analyze_collections(sym::ExprPool& pool,
                                                const ReducedPath& rp) {
    // Gather every object term selected-from anywhere in the path.
    std::vector<const Expr*> objects;
    std::unordered_set<const Expr*> seen;
    for (const PathPredicate& p : rp.preds) {
        sym::for_each_node(p.expr, [&](const Expr* n) {
            if (n->kind == Kind::Select && seen.insert(n->child0).second)
                objects.push_back(n->child0);
            if (n->kind == Kind::Len && seen.insert(n->child0).second)
                objects.push_back(n->child0);
        });
    }

    std::vector<CollectionInfo> out;
    for (const Expr* obj : objects) {
        CollectionInfo info;
        info.obj = obj;
        for (std::size_t pos = 0; pos < rp.preds.size(); ++pos) {
            const Expr* e = rp.preds[pos].expr;

            // Element atom: all Select(obj, ·) occurrences share one
            // constant index.
            std::unordered_set<std::int64_t> ks;
            bool nonconst = false;
            collect_select_indices(e, obj, ks, nonconst);
            if (!nonconst && ks.size() == 1) {
                const std::int64_t k = *ks.begin();
                const Expr* sel_int = pool.select(obj, pool.int_const(k), Sort::Int);
                const Expr* sel_obj = pool.select(obj, pool.int_const(k), Sort::Obj);
                const Expr* bv = pool.bound_var(0);
                const Expr* shape = sym::substitute(
                    pool, e,
                    {{sel_int, pool.select(obj, bv, Sort::Int)},
                     {sel_obj, pool.select(obj, bv, Sort::Obj)}});
                info.elems.push_back({pos, k, shape});
                continue;
            }
            if (!ks.empty() || nonconst) continue;  // mixed-index: not generalizable

            // Length comparisons, normalized through the linear form
            // coeff * obj.len + off REL 0: lower bounds `L <= len` become
            // domain atoms (index L-1 is valid), upper bounds `len <= B`
            // become length bounds. Covers the pinned allocation shapes
            // like `2 * s.len + 2 == 6` too.
            if (!sym::is_comparison(e->kind)) continue;
            const auto la = len_affine(e->child0, obj);
            const auto ra = len_affine(e->child1, obj);
            if (!la || !ra) continue;
            std::int64_t coeff = la->coeff - ra->coeff;
            std::int64_t off = la->offset - ra->offset;
            if (coeff == 0) continue;
            Kind rel = e->kind;
            if (coeff < 0) {
                coeff = -coeff;
                off = -off;
                switch (rel) {
                    case Kind::Lt: rel = Kind::Gt; break;
                    case Kind::Le: rel = Kind::Ge; break;
                    case Kind::Gt: rel = Kind::Lt; break;
                    case Kind::Ge: rel = Kind::Le; break;
                    default: break;
                }
            }
            // Now: coeff * len + off REL 0 with coeff > 0.
            switch (rel) {
                case Kind::Eq:
                    if (-off % coeff == 0) {
                        const std::int64_t v = -off / coeff;
                        info.len_bounds.push_back({pos, v});
                        if (v >= 1) info.domains.push_back({pos, v - 1});
                    }
                    break;
                case Kind::Lt:  // len < -off/coeff
                    info.len_bounds.push_back({pos, ceil_div(-off, coeff) - 1});
                    break;
                case Kind::Le:  // len <= -off/coeff
                    info.len_bounds.push_back({pos, floor_div(-off, coeff)});
                    break;
                case Kind::Gt:  // len > -off/coeff  =>  len >= floor+1
                    info.domains.push_back({pos, floor_div(-off, coeff)});
                    break;
                case Kind::Ge:  // len >= ceil(-off/coeff)
                    info.domains.push_back({pos, ceil_div(-off, coeff) - 1});
                    break;
                default:
                    break;
            }
        }
        if (!info.elems.empty()) out.push_back(std::move(info));
    }
    return out;
}

namespace {

/// Shape comparison: interned pointer equality, optionally falling back to
/// solver-decided semantic equivalence.
bool shapes_match(sym::ExprPool& pool, solver::Solver* solver, const Expr* a,
                  const Expr* b) {
    if (a == b) return true;
    return solver != nullptr && semantically_equal(pool, *solver, a, b);
}

/// Deduplicated element atoms by index: index -> the common shape, or
/// nullptr if two atoms at the same index disagree in shape.
std::map<std::int64_t, const Expr*> shapes_by_index(sym::ExprPool& pool,
                                                    solver::Solver* solver,
                                                    const CollectionInfo& info) {
    std::map<std::int64_t, const Expr*> by_k;
    for (const auto& e : info.elems) {
        auto [it, inserted] = by_k.emplace(e.k, e.shape);
        if (!inserted && it->second != nullptr &&
            !shapes_match(pool, solver, it->second, e.shape)) {
            it->second = nullptr;
        }
    }
    return by_k;
}

class ExistentialTemplate final : public GeneralizationTemplate {
public:
    const char* name() const override { return "existential"; }

    std::optional<TemplateMatch> try_match(sym::ExprPool& pool, const ReducedPath& rp,
                                           const CollectionInfo& info,
                                           solver::Solver* solver) const override {
        if (rp.preds.empty()) return std::nullopt;
        const std::size_t last = rp.preds.size() - 1;

        // Pivot: the assertion-violating predicate must be an element atom
        // of this collection.
        const CollectionInfo::ElemAtom* pivot = nullptr;
        for (const auto& e : info.elems) {
            if (e.pos == last) pivot = &e;
        }
        if (!pivot) return std::nullopt;

        const Expr* phi = pivot->shape;
        const Expr* not_phi = pool.negate(phi);
        const std::int64_t K = pivot->k;

        // Every previously visited element must witness ¬φ (a guard on the
        // failing element itself may re-state φ, e.g. the branch that led
        // into the failing operation).
        std::vector<std::size_t> consumed{pivot->pos};
        std::vector<bool> have(static_cast<std::size_t>(std::max<std::int64_t>(K, 0)),
                               false);
        for (const auto& e : info.elems) {
            if (e.pos == last) continue;
            if (e.k == K && shapes_match(pool, solver, e.shape, phi)) {
                consumed.push_back(e.pos);
                continue;
            }
            if (e.k < 0 || e.k >= K) return std::nullopt;  // stray index
            if (!shapes_match(pool, solver, e.shape, not_phi))
                return std::nullopt;  // inconsistent property
            have[static_cast<std::size_t>(e.k)] = true;
            consumed.push_back(e.pos);
        }
        for (std::int64_t j = 0; j < K; ++j) {
            if (!have[static_cast<std::size_t>(j)]) return std::nullopt;
        }

        // Domain predicates over visited indices are subsumed too.
        for (const auto& d : info.domains) {
            if (d.k <= K) consumed.push_back(d.pos);
        }

        const Expr* bv = pool.bound_var(0);
        TemplateMatch m;
        m.quantified = make_exists(0, info.obj, pool.lt(bv, pool.len(info.obj)), phi);
        std::sort(consumed.begin(), consumed.end());
        consumed.erase(std::unique(consumed.begin(), consumed.end()), consumed.end());
        m.consumed = std::move(consumed);
        m.score = static_cast<int>(m.consumed.size());
        m.template_name = name();
        return m;
    }
};

class UniversalTemplate final : public GeneralizationTemplate {
public:
    const char* name() const override { return "universal"; }

    std::optional<TemplateMatch> try_match(sym::ExprPool& pool, const ReducedPath& rp,
                                           const CollectionInfo& info,
                                           solver::Solver* solver) const override {
        if (rp.preds.empty()) return std::nullopt;
        const std::size_t last = rp.preds.size() - 1;

        const auto by_k = shapes_by_index(pool, solver, info);
        if (by_k.size() < 2) return std::nullopt;  // need repetition evidence

        // One shared shape φ across every visited element. The aborting
        // predicate may itself be the last iteration's φ-check (a whole-
        // collection scan whose failure is control-dependent on having
        // consumed everything), or lie after the loop entirely.
        const Expr* phi = nullptr;
        for (const auto& [k, shape] : by_k) {
            if (shape == nullptr) return std::nullopt;
            if (phi == nullptr) phi = shape;
            if (!shapes_match(pool, solver, shape, phi)) return std::nullopt;
        }

        // Visited indices must cover 0..K contiguously.
        std::int64_t expect = 0;
        for (const auto& [k, shape] : by_k) {
            (void)shape;
            if (k != expect) return std::nullopt;
            ++expect;
        }
        const std::int64_t K = expect - 1;

        // The loop must have exhausted the collection: some predicate
        // bounds the length by K+1. The bound may itself be the aborting
        // predicate (when the assert's own condition folded to a constant,
        // the recorded loop-exit check is the last predicate) — the
        // quantified condition then takes its place at the end of the path.
        bool bounded = false;
        std::vector<std::size_t> consumed;
        for (const auto& b : info.len_bounds) {
            if (b.bound <= K + 1) {
                bounded = true;
                consumed.push_back(b.pos);
            }
        }
        if (!bounded) return std::nullopt;

        for (const auto& e : info.elems) consumed.push_back(e.pos);
        for (const auto& d : info.domains) {
            if (d.pos != last) consumed.push_back(d.pos);
        }

        const Expr* bv = pool.bound_var(0);
        TemplateMatch m;
        m.quantified = make_forall(0, info.obj, pool.lt(bv, pool.len(info.obj)), phi);
        std::sort(consumed.begin(), consumed.end());
        consumed.erase(std::unique(consumed.begin(), consumed.end()), consumed.end());
        m.consumed = std::move(consumed);
        m.score = static_cast<int>(m.consumed.size());
        m.template_name = name();
        return m;
    }
};

class StridedExistentialTemplate final : public GeneralizationTemplate {
public:
    explicit StridedExistentialTemplate(std::int64_t stride) : stride_(stride) {
        PI_CHECK(stride >= 2, "stride must be at least 2");
    }

    const char* name() const override { return "strided-existential"; }

    std::optional<TemplateMatch> try_match(sym::ExprPool& pool, const ReducedPath& rp,
                                           const CollectionInfo& info,
                                           solver::Solver* solver) const override {
        if (rp.preds.empty()) return std::nullopt;
        const std::size_t last = rp.preds.size() - 1;

        const CollectionInfo::ElemAtom* pivot = nullptr;
        for (const auto& e : info.elems) {
            if (e.pos == last) pivot = &e;
        }
        if (!pivot) return std::nullopt;
        const std::int64_t K = pivot->k;
        const std::int64_t phase = ((K % stride_) + stride_) % stride_;
        if (K < stride_) return std::nullopt;  // indistinguishable from stride 1

        const Expr* phi = pivot->shape;
        const Expr* not_phi = pool.negate(phi);

        std::vector<std::size_t> consumed{pivot->pos};
        std::vector<bool> have(static_cast<std::size_t>(K / stride_), false);
        for (const auto& e : info.elems) {
            if (e.pos == last) continue;
            if (e.k < 0 || e.k >= K || e.k % stride_ != phase) return std::nullopt;
            if (!shapes_match(pool, solver, e.shape, not_phi)) return std::nullopt;
            have[static_cast<std::size_t>(e.k / stride_)] = true;
            consumed.push_back(e.pos);
        }
        for (std::int64_t j = phase; j < K; j += stride_) {
            if (!have[static_cast<std::size_t>(j / stride_)]) return std::nullopt;
        }

        for (const auto& d : info.domains) {
            if (d.k <= K) consumed.push_back(d.pos);
        }

        const Expr* bv = pool.bound_var(0);
        const Expr* domain =
            pool.and_(pool.lt(bv, pool.len(info.obj)),
                      pool.eq(pool.mod(bv, pool.int_const(stride_)),
                              pool.int_const(phase)));
        TemplateMatch m;
        m.quantified = make_exists(0, info.obj, domain, phi);
        std::sort(consumed.begin(), consumed.end());
        consumed.erase(std::unique(consumed.begin(), consumed.end()), consumed.end());
        m.consumed = std::move(consumed);
        m.score = static_cast<int>(m.consumed.size());
        m.template_name = name();
        return m;
    }

private:
    std::int64_t stride_;
};

class StridedUniversalTemplate final : public GeneralizationTemplate {
public:
    explicit StridedUniversalTemplate(std::int64_t stride) : stride_(stride) {
        PI_CHECK(stride >= 2, "stride must be at least 2");
    }

    const char* name() const override { return "strided-universal"; }

    std::optional<TemplateMatch> try_match(sym::ExprPool& pool, const ReducedPath& rp,
                                           const CollectionInfo& info,
                                           solver::Solver* solver) const override {
        if (rp.preds.empty()) return std::nullopt;

        const auto by_k = shapes_by_index(pool, solver, info);
        if (by_k.size() < 2) return std::nullopt;

        // One shared shape over stride-aligned indices starting at 0.
        const Expr* phi = nullptr;
        std::int64_t expect = 0;
        for (const auto& [k, shape] : by_k) {
            if (shape == nullptr || k != expect) return std::nullopt;
            if (phi == nullptr) phi = shape;
            if (!shapes_match(pool, solver, shape, phi)) return std::nullopt;
            expect += stride_;
        }
        const std::int64_t K = expect - stride_;
        if (K < stride_) return std::nullopt;  // indistinguishable from stride 1

        // The loop must have run off the end: length bounded by K+stride.
        bool bounded = false;
        std::vector<std::size_t> consumed;
        for (const auto& b : info.len_bounds) {
            if (b.bound <= K + stride_) {
                bounded = true;
                consumed.push_back(b.pos);
            }
        }
        if (!bounded) return std::nullopt;

        const std::size_t last = rp.preds.size() - 1;
        for (const auto& e : info.elems) consumed.push_back(e.pos);
        for (const auto& d : info.domains) {
            if (d.pos != last) consumed.push_back(d.pos);
        }

        const Expr* bv = pool.bound_var(0);
        const Expr* domain =
            pool.and_(pool.lt(bv, pool.len(info.obj)),
                      pool.eq(pool.mod(bv, pool.int_const(stride_)), pool.int_const(0)));
        TemplateMatch m;
        m.quantified = make_forall(0, info.obj, domain, phi);
        std::sort(consumed.begin(), consumed.end());
        consumed.erase(std::unique(consumed.begin(), consumed.end()), consumed.end());
        m.consumed = std::move(consumed);
        m.score = static_cast<int>(m.consumed.size());
        m.template_name = name();
        return m;
    }

private:
    std::int64_t stride_;
};

}  // namespace

std::unique_ptr<GeneralizationTemplate> existential_template() {
    return std::make_unique<ExistentialTemplate>();
}

std::unique_ptr<GeneralizationTemplate> universal_template() {
    return std::make_unique<UniversalTemplate>();
}

std::unique_ptr<GeneralizationTemplate> strided_existential_template(std::int64_t stride) {
    return std::make_unique<StridedExistentialTemplate>(stride);
}

std::unique_ptr<GeneralizationTemplate> strided_universal_template(std::int64_t stride) {
    return std::make_unique<StridedUniversalTemplate>(stride);
}

TemplateRegistry TemplateRegistry::standard() {
    TemplateRegistry r;
    r.add(existential_template());
    r.add(universal_template());
    r.add(strided_existential_template(2));
    r.add(strided_universal_template(2));
    return r;
}

TemplateRegistry TemplateRegistry::none() { return {}; }

}  // namespace preinfer::core
