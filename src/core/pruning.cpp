#include "src/core/pruning.h"

#include <algorithm>
#include <deque>
#include <unordered_set>

#include "src/support/diagnostics.h"
#include "src/support/metrics.h"
#include "src/support/trace.h"
#include "src/sym/print.h"

namespace preinfer::core {

namespace {

using sym::Expr;

/// Identity of a branch, polarity-insensitive: the site plus the canonical
/// (lower-id) orientation of the predicate expression. Removing a key
/// removes the branch from a path no matter which way the path took it,
/// which is what keeps prefixes aligned across paths.
struct PredKey {
    int site = -1;
    const Expr* canonical = nullptr;

    friend bool operator==(const PredKey&, const PredKey&) = default;
};

struct PredKeyHash {
    std::size_t operator()(const PredKey& k) const noexcept {
        return std::hash<const void*>()(k.canonical) * 31u +
               static_cast<std::size_t>(k.site);
    }
};

/// One predicate occurrence in a working copy.
struct Entry {
    PathPredicate pred;
    int orig_index = -1;
    PredKey key;
};

struct WorkingPath {
    const PathCondition* original = nullptr;
    bool failing = false;  ///< failing at the target ACL
    std::vector<Entry> entries;
};

/// Starts a predicate_{kept,pruned,duplicate} record with the shared
/// context fields. Only call when tracing is active.
support::TraceEvent predicate_event(support::TraceEventKind kind, AclId acl,
                                    const Entry& e) {
    support::TraceEvent event(kind);
    event.field("acl_kind", exception_kind_name(acl.kind))
        .field("acl_node", acl.node_id)
        .field("index", e.orig_index)
        .field("site", e.pred.site_id)
        .field("pred", sym::to_string(e.pred.expr, support::trace_param_names()));
    return event;
}

}  // namespace

PredicatePruner::PredicatePruner(sym::ExprPool& pool, AclId acl,
                                 std::vector<const PathCondition*> failing,
                                 std::vector<const PathCondition*> passing,
                                 PruningConfig config, WitnessOracle* oracle)
    : pool_(pool),
      acl_(acl),
      failing_(std::move(failing)),
      passing_(std::move(passing)),
      config_(config),
      oracle_(oracle) {}

ReducedPath PredicatePruner::prune(const PathCondition& pf) {
    auto key_of = [this](const PathPredicate& p) {
        const Expr* neg = pool_.negate(p.expr);
        return PredKey{p.site_id, p.expr->id <= neg->id ? p.expr : neg};
    };

    auto build_working = [&](const PathCondition& pc, bool failing, bool strip_last) {
        WorkingPath w;
        w.original = &pc;
        w.failing = failing;
        w.entries.reserve(pc.preds.size());
        for (std::size_t i = 0; i < pc.preds.size(); ++i) {
            w.entries.push_back(
                {pc.preds[i], static_cast<int>(i), key_of(pc.preds[i])});
        }
        // SP[p] <- Last(p); p <- p \ Last(p): the predicate moves into the
        // slice, so the backward walk over pf starts before it. For the
        // *other* paths the slice entry stays visible in the working copy —
        // a passing path often deviates from pf exactly at its final
        // predicate (a loop-exit branch), and hiding it would lose that
        // c-depend evidence.
        if (strip_last && !w.entries.empty()) w.entries.pop_back();
        return w;
    };

    std::vector<WorkingPath> others;
    for (const PathCondition* q : failing_) {
        if (q == &pf) continue;
        others.push_back(build_working(*q, /*failing=*/true, /*strip_last=*/false));
    }
    for (const PathCondition* q : passing_) {
        others.push_back(build_working(*q, /*failing=*/false, /*strip_last=*/false));
    }

    WorkingPath wpf = build_working(pf, /*failing=*/true, /*strip_last=*/true);
    const Expr* pf_last_expr = pf.preds.empty() ? nullptr : pf.preds.back().expr;

    stats_.predicates_before += static_cast<int>(pf.preds.size());

    std::vector<Entry> kept;
    std::vector<PathPredicate> out_pruned;
    if (!pf.preds.empty()) {
        kept.push_back({pf.preds.back(), static_cast<int>(pf.preds.size()) - 1,
                        key_of(pf.preds.back())});
        if (support::trace_active()) {
            // The assertion-violating condition is kept unconditionally; it
            // is the expression Definitions 5-6 preserve, not a candidate.
            predicate_event(support::TraceEventKind::PredicateKept, acl_,
                            kept.back())
                .field("justification", "last-branch")
                .emit();
        }
    }
    std::unordered_set<PredKey, PredKeyHash> decided;

    auto erase_key = [](WorkingPath& w, const PredKey& key) {
        std::erase_if(w.entries, [&key](const Entry& e) { return e.key == key; });
    };

    while (!wpf.entries.empty()) {
        const Entry b = wpf.entries.back();

        if (decided.count(b.key) > 0) {
            // A later duplicate of an already-decided branch (loop
            // re-execution): its fate was decided with the duplicate set.
            if (support::trace_active()) {
                predicate_event(support::TraceEventKind::PredicateDuplicate, acl_, b)
                    .emit();
            }
            wpf.entries.pop_back();
            continue;
        }

        // --- gather deviating prefix-sharing evidence --------------------
        // The prefix is everything before b in pf's current working copy.
        const std::size_t plen = wpf.entries.size() - 1;
        const Expr* b_neg = pool_.negate(b.pred.expr);

        // Each deviating prefix-sharing path that reaches the ACL reveals
        // the symbolic expression of the p-assertion-violating condition on
        // the other side of b. Location reachability (Definition 5) fails
        // as soon as one such path exists; expression preservation
        // (Definition 6, read as in the paper's running example where
        // `a > 0` is pruned because the deviating t_f2 "does not change the
        // symbolic expression") fails only if every deviating ACL-reaching
        // path shows a *different* expression.
        bool saw_reaching = false;
        bool saw_same_expr = false;
        bool saw_diff_expr = false;

        // Expression preservation across the deviation: the deviating
        // failing path must fail with pf's assertion-violating expression
        // AND carry every predicate kept so far (the slice) with identical
        // symbolic expressions. This is why Table I keeps `c > 0` (flipping
        // it turns the kept `d + 1 > 0` into `d > 0`) yet prunes `a > 0`
        // (flipping it only perturbs the already-pruned `b + 1 > 0`).
        auto preserves_expressions = [&kept](const PathCondition& q) {
            for (const Entry& e : kept) {
                bool found = false;
                for (const PathPredicate& pp : q.preds) {
                    if (pp.expr == e.pred.expr) {
                        found = true;
                        break;
                    }
                }
                if (!found) return false;
            }
            return true;
        };

        // The violating-orientation expression of a path's first arrival at
        // the ACL beyond a given predicate index: the aborting predicate
        // itself for a failing arrival, the negated check predicate for a
        // passing one, nullptr when the arrival's check constant-folded
        // (concrete condition), nullopt when the path never arrives there.
        auto first_arrival = [this](const PathCondition& pc, int after,
                                    bool fails_at_acl)
            -> std::optional<const Expr*> {
            for (std::size_t i = 0; i < pc.preds.size(); ++i) {
                const PathPredicate& pp = pc.preds[i];
                if (static_cast<int>(i) <= after) continue;
                if (pp.site_id != acl_.node_id || pp.check != acl_.kind) continue;
                const bool aborting = fails_at_acl && i + 1 == pc.preds.size();
                return aborting ? pp.expr : pool_.negate(pp.expr);
            }
            if (pc.reaches_after(acl_, after)) return nullptr;  // folded arrival
            return std::nullopt;
        };

        // Any deviating path that still reaches the ACL disproves c-depend.
        // Expression-preservation votes: a failing deviator compares its
        // aborting expression (and the kept slice) against pf's; a passing
        // deviator compares the violating expression of its first arrival
        // against pf's first arrival beyond the same branch — this is what
        // keeps the overly specific collection predicates alive (their
        // flipped twins arrive at the ACL with a *different* element
        // expression) while letting genuinely irrelevant branches go.
        const auto pf_arrival = first_arrival(pf, b.orig_index, /*fails_at_acl=*/true);

        for (const WorkingPath& q : others) {
            if (q.entries.size() < plen + 1) continue;
            bool prefix_match = true;
            for (std::size_t i = 0; i < plen; ++i) {
                if (q.entries[i].pred.expr != wpf.entries[i].pred.expr) {
                    prefix_match = false;
                    break;
                }
            }
            if (!prefix_match) continue;
            const Entry& dev = q.entries[plen];
            if (dev.pred.site_id != b.pred.site_id || dev.pred.expr != b_neg) continue;

            if (q.failing) {
                saw_reaching = true;
                if (q.original->preds.empty()) continue;
                if (q.original->preds.back().expr == pf_last_expr &&
                    preserves_expressions(*q.original)) {
                    saw_same_expr = true;
                } else {
                    saw_diff_expr = true;
                }
            } else if (const auto q_arrival =
                           first_arrival(*q.original, dev.orig_index,
                                         /*fails_at_acl=*/false)) {
                saw_reaching = true;
                if (!pf_arrival.has_value() || *q_arrival != *pf_arrival) {
                    // Different violating expression on the other side.
                    saw_diff_expr = true;
                } else if (*q_arrival == nullptr) {
                    // Both arrivals constant-folded: there is no symbolic
                    // expression to preserve, so the branch is irrelevant
                    // to the check (counted loops guarding a concrete
                    // assert). Over-aggressive cases are repaired by the
                    // minimal-restore verification step.
                    saw_same_expr = true;
                }
                // Symbolic and equal: reachability evidence only; whether
                // the expression is genuinely preserved is decided by
                // failing deviators (which carry the kept slice).
            }
        }

        if (!saw_reaching && config_.mode == PruningMode::SolverAssisted &&
            oracle_ != nullptr && stats_.oracle_calls < config_.max_oracle_calls) {
            std::vector<const Expr*> conjuncts;
            conjuncts.reserve(plen + 1);
            for (std::size_t i = 0; i < plen; ++i)
                conjuncts.push_back(wpf.entries[i].pred.expr);
            conjuncts.push_back(b_neg);
            ++stats_.oracle_calls;
            if (support::metrics_enabled()) {
                static auto& m_oracle_calls =
                    support::MetricsRegistry::global().counter("pruning.oracle_calls");
                m_oracle_calls.add();
            }
            if (const auto w = oracle_->witness(conjuncts)) {
                const bool fails_here = w->failing && w->acl == acl_;
                if (fails_here) {
                    saw_reaching = true;
                    if (!w->pc->preds.empty() &&
                        w->pc->preds.back().expr == pf_last_expr &&
                        preserves_expressions(*w->pc)) {
                        saw_same_expr = true;
                    } else if (!w->pc->preds.empty()) {
                        saw_diff_expr = true;
                    }
                } else if (!w->failing && w->pc->reaches(acl_)) {
                    saw_reaching = true;
                }
            }
            // No witness at all: the deviation is infeasible (or beyond the
            // solver), i.e. every input satisfying the prefix takes b's
            // side — with no evidence we conservatively keep the predicate.
        }

        const bool c_depend = !saw_reaching;
        const bool d_impact = saw_diff_expr && !saw_same_expr;
        const bool keep = c_depend || d_impact;
        decided.insert(b.key);
        if (support::trace_active()) {
            // The Definition-5/6 verdict plus the raw evidence that produced
            // it, so a trace reader can audit the decision.
            const char* justification =
                keep ? (c_depend && d_impact ? "both"
                                             : (c_depend ? "c-depend" : "d-impact"))
                     : "deviation";
            predicate_event(keep ? support::TraceEventKind::PredicateKept
                                 : support::TraceEventKind::PredicatePruned,
                            acl_, b)
                .field("justification", justification)
                .field("reaching", saw_reaching)
                .field("same_expr", saw_same_expr)
                .field("diff_expr", saw_diff_expr)
                .emit();
        }
        if (support::metrics_enabled()) {
            auto& registry = support::MetricsRegistry::global();
            static auto& m_c_depend = registry.counter("pruning.kept_c_depend");
            static auto& m_d_impact = registry.counter("pruning.kept_d_impact");
            static auto& m_pruned = registry.counter("pruning.pruned");
            if (keep) {
                if (c_depend) m_c_depend.add();
                if (d_impact) m_d_impact.add();
            } else {
                m_pruned.add();
            }
        }
        if (keep) {
            if (c_depend) ++stats_.kept_c_depend;
            if (d_impact) ++stats_.kept_d_impact;
            kept.push_back(b);
        } else {
            ++stats_.pruned;
            out_pruned.push_back(b.pred);
        }
        // Either way the branch leaves every working copy (kept predicates
        // move into slices; pruned ones disappear), preserving alignment.
        erase_key(wpf, b.key);
        for (WorkingPath& q : others) erase_key(q, b.key);
    }

    std::sort(kept.begin(), kept.end(),
              [](const Entry& a, const Entry& b) { return a.orig_index < b.orig_index; });

    ReducedPath out;
    out.original = &pf;
    out.preds.reserve(kept.size());
    for (const Entry& e : kept) out.preds.push_back(e.pred);
    out.pruned = std::move(out_pruned);
    stats_.predicates_after += static_cast<int>(out.preds.size());
    return out;
}

std::vector<ReducedPath> PredicatePruner::prune_all() {
    std::vector<ReducedPath> out;
    out.reserve(failing_.size());
    for (const PathCondition* pf : failing_) {
        out.push_back(prune(*pf));
    }
    return out;
}

}  // namespace preinfer::core
