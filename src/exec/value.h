#pragma once

#include <cstdint>

#include "src/sym/expr.h"

namespace preinfer::exec {

/// Reference into the interpreter heap; id < 0 is the null reference.
struct ObjRef {
    int id = -1;

    [[nodiscard]] bool is_null() const { return id < 0; }
    friend bool operator==(const ObjRef&, const ObjRef&) = default;

    static ObjRef null() { return {-1}; }
};

/// A concolic value: the concrete payload the interpreter computes with,
/// plus the symbolic expression describing it in terms of the method inputs.
/// `sym == nullptr` means "concrete constant" (no input dependence); the
/// literal expression is materialized on demand, which is what lets the
/// engine skip recording input-independent branch predicates.
struct CValue {
    enum class Tag : std::uint8_t { Int, Bool, Ref };

    Tag tag = Tag::Int;
    std::int64_t i = 0;  ///< Int payload / Bool payload (0 or 1)
    ObjRef ref;          ///< Ref payload
    const sym::Expr* sym = nullptr;

    static CValue make_int(std::int64_t v, const sym::Expr* s = nullptr) {
        CValue c;
        c.tag = Tag::Int;
        c.i = v;
        c.sym = s;
        return c;
    }
    static CValue make_bool(bool v, const sym::Expr* s = nullptr) {
        CValue c;
        c.tag = Tag::Bool;
        c.i = v ? 1 : 0;
        c.sym = s;
        return c;
    }
    static CValue make_ref(ObjRef r, const sym::Expr* s = nullptr) {
        CValue c;
        c.tag = Tag::Ref;
        c.ref = r;
        c.sym = s;
        return c;
    }

    [[nodiscard]] bool as_bool() const { return i != 0; }
    [[nodiscard]] bool is_symbolic() const { return sym != nullptr; }
};

}  // namespace preinfer::exec
