#pragma once

#include <cstdint>
#include <string>
#include <variant>
#include <vector>

#include "src/lang/ast.h"
#include "src/sym/eval.h"

namespace preinfer::exec {

/// Concrete value of a `str` parameter (nullable character sequence).
struct StrInput {
    bool is_null = true;
    std::vector<std::int64_t> chars;

    static StrInput null() { return {}; }
    static StrInput of(std::string_view text);

    friend bool operator==(const StrInput&, const StrInput&) = default;
};

struct IntArrInput {
    bool is_null = true;
    std::vector<std::int64_t> elems;

    static IntArrInput null() { return {}; }
    static IntArrInput of(std::vector<std::int64_t> values);

    friend bool operator==(const IntArrInput&, const IntArrInput&) = default;
};

struct StrArrInput {
    bool is_null = true;
    std::vector<StrInput> elems;

    static StrArrInput null() { return {}; }
    static StrArrInput of(std::vector<StrInput> values);

    friend bool operator==(const StrArrInput&, const StrArrInput&) = default;
};

using ArgValue = std::variant<std::int64_t, bool, StrInput, IntArrInput, StrArrInput>;

/// A method-entry state (Definition 1): one concrete value per parameter.
struct Input {
    std::vector<ArgValue> args;

    [[nodiscard]] std::uint64_t hash() const;
    [[nodiscard]] std::string to_string(const lang::Method& method) const;

    friend bool operator==(const Input&, const Input&) = default;
};

/// The all-default entry state for a signature: ints 0, bools false,
/// references null (Pex's first seed looks the same).
[[nodiscard]] Input default_input(const lang::Method& method);

/// Adapts an Input to the symbolic evaluator, so preconditions (which are
/// expressions over Param leaves) can be evaluated against entry states.
class InputEvalEnv final : public sym::EvalEnv {
public:
    InputEvalEnv(const lang::Method& method, const Input& input);

    [[nodiscard]] sym::EvalValue param(int index) const override;
    [[nodiscard]] std::int64_t obj_len(int handle) const override;
    [[nodiscard]] sym::EvalValue obj_elem(int handle, std::int64_t index) const override;

private:
    struct ObjEntry {
        const StrInput* str = nullptr;
        const IntArrInput* int_arr = nullptr;
        const StrArrInput* str_arr = nullptr;
        /// For str_arr: handle of each element object (-1 = null element).
        std::vector<int> elem_handles;
    };

    int register_str(const StrInput& s);
    int register_int_arr(const IntArrInput& a);
    int register_str_arr(const StrArrInput& a);

    const Input& input_;
    std::vector<ObjEntry> objects_;
    std::vector<int> param_handles_;  ///< handle per parameter (-1 = null / scalar)
};

}  // namespace preinfer::exec
