#include "src/exec/executor.h"

#include "src/exec/concolic.h"
#include "src/exec/il_interp.h"

namespace preinfer::exec {

const char* backend_name(Backend backend) {
    switch (backend) {
        case Backend::IL: return "il";
        case Backend::Ast: return "ast";
    }
    return "?";
}

bool parse_backend(std::string_view name, Backend& out) {
    if (name == "il") {
        out = Backend::IL;
        return true;
    }
    if (name == "ast") {
        out = Backend::Ast;
        return true;
    }
    return false;
}

std::unique_ptr<Executor> make_executor(Backend backend, sym::ExprPool& pool,
                                        const lang::Method& method, ExecLimits limits,
                                        const lang::Program* program) {
    if (backend == Backend::Ast) {
        return std::make_unique<ConcolicInterpreter>(pool, method, limits, program);
    }
    return std::make_unique<IlInterpreter>(pool, method, limits, program);
}

}  // namespace preinfer::exec
