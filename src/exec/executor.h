#pragma once

#include <cstdint>
#include <memory>
#include <string_view>

#include "src/exec/input.h"
#include "src/exec/outcome.h"

namespace preinfer::lang {
struct Method;
struct Program;
}  // namespace preinfer::lang
namespace preinfer::sym {
class ExprPool;
}  // namespace preinfer::sym

namespace preinfer::exec {

/// Budgets that bound one concolic execution. MiniLang programs can loop
/// forever; hitting a budget yields Outcome::Exhausted, which the test
/// generator treats as "not a usable test" (Pex's timeouts behave the same).
struct ExecLimits {
    int max_steps = 200000;      ///< executed statements + loop iterations
    int max_path_preds = 4096;   ///< recorded path-condition length
    int max_call_depth = 64;     ///< nested user-method calls (recursion guard)
    std::int64_t max_alloc = 1 << 20;  ///< largest program-created array
};

/// Which concolic execution backend runs a method (docs/IL.md). Both
/// produce byte-identical path conditions, traces and precondition
/// fingerprints — the AST walker is retained for differential checking
/// (src/fuzz/diff_oracle.cpp cross-checks them on every fuzz iteration).
enum class Backend : std::uint8_t {
    IL,   ///< compile to the register bytecode IL, direct-threaded dispatch
    Ast,  ///< walk the AST directly (the original interpreter)
};

[[nodiscard]] const char* backend_name(Backend backend);
/// Parses "il" / "ast"; false on anything else.
[[nodiscard]] bool parse_backend(std::string_view name, Backend& out);

/// A concolic execution backend for one MiniLang method: executes an Input
/// concretely while shadowing every value with a symbolic expression over
/// the method inputs (see ConcolicInterpreter for the full contract both
/// implementations honor).
class Executor {
public:
    virtual ~Executor() = default;

    /// Executes one method-entry state. Never throws on MiniLang-level
    /// failures (they become Outcome::Exception).
    [[nodiscard]] virtual RunResult run(const Input& input) const = 0;
};

/// Builds the requested backend. `method` must be type-checked and
/// block-labeled; `pool`, `method` and `program` must outlive the executor.
[[nodiscard]] std::unique_ptr<Executor> make_executor(
    Backend backend, sym::ExprPool& pool, const lang::Method& method,
    ExecLimits limits = {}, const lang::Program* program = nullptr);

}  // namespace preinfer::exec
