#pragma once

#include "src/core/path_condition.h"
#include "src/exec/executor.h"
#include "src/exec/heap.h"
#include "src/exec/input.h"
#include "src/exec/outcome.h"
#include "src/lang/ast.h"
#include "src/sym/expr_pool.h"

namespace preinfer::exec::shadow {

/// Shared concrete+symbolic operator semantics for the two execution
/// backends (the AST walker in concolic.cpp and the bytecode interpreter in
/// il_interp.cpp). Both backends must produce byte-identical path
/// conditions and precondition fingerprints, and sym::Expr ids are
/// creation-ordered within a pool, so the exact sequence of pool operations
/// — including on-demand constant materialization and constant-fold skips —
/// is part of each helper's contract. Keeping one copy here makes that
/// equivalence hold by construction; docs/IL.md documents the per-opcode
/// symbolic shadow effects in these terms.

// --- wrap-around integer arithmetic (MiniLang ints are 64-bit two's
// complement; going through uint64 avoids signed-overflow UB) -------------
inline std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}
inline std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}
inline std::int64_t safe_div(std::int64_t a, std::int64_t b) {
    if (b == -1) return wrap_sub(0, a);  // avoids INT64_MIN / -1 overflow UB
    return a / b;
}
inline std::int64_t safe_mod(std::int64_t a, std::int64_t b) {
    if (b == -1) return 0;
    return a % b;
}

/// Unwinds execution when an assertion (implicit or explicit) fails.
struct AbortSignal {
    core::AclId acl;
};

/// Unwinds execution when a budget is exceeded.
struct ExhaustedSignal {};

/// Symbolic expression of an int/bool value (literal materialized on
/// demand when concrete).
[[nodiscard]] const sym::Expr* sym_of(sym::ExprPool& pool, const CValue& v);

/// Path recording and runtime checks over one execution's RunResult: the
/// branch/check/step protocol both backends share verbatim.
class Recorder {
public:
    Recorder(sym::ExprPool& pool, const ExecLimits& limits, RunResult& result)
        : pool_(pool), limits_(limits), result_(result) {}

    [[nodiscard]] sym::ExprPool& pool() { return pool_; }
    [[nodiscard]] const ExecLimits& limits() const { return limits_; }

    [[nodiscard]] const sym::Expr* sym_of(const CValue& v) {
        return shadow::sym_of(pool_, v);
    }

    /// Records a branch predicate in taken polarity; drops input-independent
    /// (constant-folding) predicates.
    void record_branch(const CValue& cond, int site_id, core::ExceptionKind check,
                       support::SourceLoc loc);

    /// An assertion check: records the check-derived branch predicate and
    /// aborts the execution when the check fails. This single entry point
    /// implements both implicit checks and explicit `assert`. The arrival
    /// itself is recorded as a visit even when the condition constant-folds
    /// and leaves no predicate behind.
    void check(const CValue& cond, int site_id, core::ExceptionKind kind,
               support::SourceLoc loc);

    /// One execution step (statement / loop iteration / Tick opcode).
    void tick() {
        if (++result_.steps > limits_.max_steps) throw ExhaustedSignal{};
    }

    /// Shared null + bounds checking for reads and writes. Returns the heap
    /// object; `idx` has been pinned to its concrete value if its symbolic
    /// expression was input-dependent (index concretization).
    HeapObject& access(Heap& heap, const CValue& base, CValue& idx, int site_id,
                       support::SourceLoc loc);

    void null_check(const CValue& base, int site_id, support::SourceLoc loc);

private:
    sym::ExprPool& pool_;
    const ExecLimits& limits_;
    RunResult& result_;
};

// --- input materialization (Param / Len / Select symbolic chains) ---------

/// Materializes one method argument as a concolic value rooted at
/// Param(param_index); collections allocate heap objects whose cells carry
/// Select chains.
[[nodiscard]] CValue materialize_arg(sym::ExprPool& pool, Heap& heap, lang::Type type,
                                     const ArgValue& arg, int param_index);

/// Value a non-void method yields when control falls off its end without a
/// `return` (MiniLang has no definite-return analysis). Reference types
/// materialize pool.null_const(), so the call site in both backends must
/// invoke this at the same point (after argument evaluation, before the
/// callee body).
[[nodiscard]] CValue default_value_of(sym::ExprPool& pool, lang::Type t);

// --- operator semantics ---------------------------------------------------

[[nodiscard]] CValue op_neg(sym::ExprPool& pool, const CValue& v);
[[nodiscard]] CValue op_not(sym::ExprPool& pool, const CValue& v);
[[nodiscard]] CValue op_add(sym::ExprPool& pool, const CValue& l, const CValue& r);
[[nodiscard]] CValue op_sub(sym::ExprPool& pool, const CValue& l, const CValue& r);
[[nodiscard]] CValue op_mul(sym::ExprPool& pool, const CValue& l, const CValue& r);
/// Division/modulo with the implicit DivideByZero check at `site_id`.
[[nodiscard]] CValue op_divmod(Recorder& rec, const CValue& l, const CValue& r,
                               bool is_div, int site_id, support::SourceLoc loc);
/// Integer comparison (`op` one of Eq/Ne/Lt/Le/Gt/Ge).
[[nodiscard]] CValue op_cmp(sym::ExprPool& pool, sym::Kind op, const CValue& l,
                            const CValue& r);
/// Reference (in)equality against null: `refside` is the non-literal side.
[[nodiscard]] CValue op_ref_null_cmp(sym::ExprPool& pool, const CValue& refside,
                                     bool is_ne);
[[nodiscard]] CValue op_is_whitespace(sym::ExprPool& pool, const CValue& v);
/// `len(base)` with the implicit null check.
[[nodiscard]] CValue op_len(Recorder& rec, Heap& heap, const CValue& base,
                            int site_id, support::SourceLoc loc);
/// `base[idx]` read with null/bounds checks; `idx` is the callee's local
/// copy (index concretization pins the copy, never the variable).
[[nodiscard]] CValue op_load(Recorder& rec, Heap& heap, const CValue& base,
                             CValue& idx, int site_id, support::SourceLoc loc);
/// `base[idx] = rhs` with null/bounds checks.
void op_store(Recorder& rec, Heap& heap, const CValue& base, CValue& idx,
              const CValue& rhs, int site_id, support::SourceLoc loc);
/// `newintarray(n)` / `newstrarray(n)`: pins a symbolic size, range-checks
/// it, and allocates zeroed / null-filled cells.
[[nodiscard]] CValue op_new_array(Recorder& rec, Heap& heap, bool str_elems,
                                  CValue n, int site_id, support::SourceLoc loc);

}  // namespace preinfer::exec::shadow
