#pragma once

#include <string>

#include "src/core/path_condition.h"
#include "src/exec/value.h"

namespace preinfer::exec {

/// How a method execution ended.
struct Outcome {
    enum class Tag : std::uint8_t {
        Normal,     ///< returned (or fell off the end of a void method)
        Exception,  ///< aborted at an assertion-containing location
        Exhausted,  ///< hit the step / path-length budget (e.g. unbounded loop)
    };

    Tag tag = Tag::Normal;
    core::AclId acl;  ///< valid iff tag == Exception

    [[nodiscard]] bool failing() const { return tag == Tag::Exception; }
    [[nodiscard]] std::string to_string() const;

    static Outcome normal() { return {}; }
    static Outcome exception(core::AclId acl) { return {Tag::Exception, acl}; }
    static Outcome exhausted() { return {Tag::Exhausted, {}}; }
};

/// Everything one concolic execution produces.
struct RunResult {
    Outcome outcome;
    core::PathCondition pc;
    std::vector<bool> covered_blocks;  ///< indexed by block id
    int steps = 0;
};

}  // namespace preinfer::exec
