#include "src/exec/outcome.h"

namespace preinfer::exec {

std::string Outcome::to_string() const {
    switch (tag) {
        case Tag::Normal:
            return "normal";
        case Tag::Exception:
            return std::string(core::exception_kind_name(acl.kind)) + " at node " +
                   std::to_string(acl.node_id);
        case Tag::Exhausted:
            return "exhausted";
    }
    return "?";
}

}  // namespace preinfer::exec
