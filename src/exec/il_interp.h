#pragma once

#include "src/exec/executor.h"
#include "src/il/il.h"
#include "src/lang/ast.h"
#include "src/sym/expr_pool.h"

namespace preinfer::exec {

/// Bytecode concolic interpreter: compiles the method (and its callees) to
/// the register IL once at construction, then executes inputs over a flat
/// virtual-register file with direct-threaded dispatch (computed goto under
/// GCC/Clang, a switch loop elsewhere). Each register holds a CValue —
/// concrete word plus symbolic shadow — so path conditions come out
/// byte-identical to the AST walker's (both backends share the operator
/// semantics in src/exec/shadow.h; docs/IL.md specifies the instruction
/// set). This is the default production backend; see exec::make_executor.
class IlInterpreter final : public Executor {
public:
    /// Same contract as ConcolicInterpreter: `method` type-checked and
    /// block-labeled, `pool`/`method`/`program` outlive the interpreter.
    IlInterpreter(sym::ExprPool& pool, const lang::Method& method,
                  ExecLimits limits = {}, const lang::Program* program = nullptr);

    [[nodiscard]] RunResult run(const Input& input) const override;

    [[nodiscard]] const lang::Method& method() const { return method_; }
    [[nodiscard]] const il::Module& module() const { return module_; }

private:
    sym::ExprPool& pool_;
    const lang::Method& method_;
    ExecLimits limits_;
    il::Module module_;
};

}  // namespace preinfer::exec
