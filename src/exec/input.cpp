#include "src/exec/input.h"

#include "src/support/diagnostics.h"

namespace preinfer::exec {

namespace {

void mix(std::uint64_t& h, std::uint64_t v) {
    h ^= v + 0x9e3779b97f4a7c15ULL + (h << 6) + (h >> 2);
}

void hash_str(std::uint64_t& h, const StrInput& s) {
    mix(h, s.is_null ? 0 : 1);
    mix(h, s.chars.size());
    for (std::int64_t c : s.chars) mix(h, static_cast<std::uint64_t>(c));
}

std::string str_to_string(const StrInput& s) {
    if (s.is_null) return "null";
    std::string out = "\"";
    for (std::int64_t c : s.chars) {
        if (c >= 32 && c < 127) {
            out += static_cast<char>(c);
        } else {
            out += "\\u" + std::to_string(c);
        }
    }
    out += '"';
    return out;
}

}  // namespace

StrInput StrInput::of(std::string_view text) {
    StrInput s;
    s.is_null = false;
    s.chars.assign(text.begin(), text.end());
    return s;
}

IntArrInput IntArrInput::of(std::vector<std::int64_t> values) {
    IntArrInput a;
    a.is_null = false;
    a.elems = std::move(values);
    return a;
}

StrArrInput StrArrInput::of(std::vector<StrInput> values) {
    StrArrInput a;
    a.is_null = false;
    a.elems = std::move(values);
    return a;
}

std::uint64_t Input::hash() const {
    std::uint64_t h = 0x243f6a8885a308d3ULL;
    for (const ArgValue& a : args) {
        mix(h, a.index());
        std::visit(
            [&h](const auto& v) {
                using T = std::decay_t<decltype(v)>;
                if constexpr (std::is_same_v<T, std::int64_t>) {
                    mix(h, static_cast<std::uint64_t>(v));
                } else if constexpr (std::is_same_v<T, bool>) {
                    mix(h, v ? 1 : 0);
                } else if constexpr (std::is_same_v<T, StrInput>) {
                    hash_str(h, v);
                } else if constexpr (std::is_same_v<T, IntArrInput>) {
                    mix(h, v.is_null ? 0 : 1);
                    mix(h, v.elems.size());
                    for (std::int64_t e : v.elems) mix(h, static_cast<std::uint64_t>(e));
                } else if constexpr (std::is_same_v<T, StrArrInput>) {
                    mix(h, v.is_null ? 0 : 1);
                    mix(h, v.elems.size());
                    for (const StrInput& e : v.elems) hash_str(h, e);
                }
            },
            a);
    }
    return h;
}

std::string Input::to_string(const lang::Method& method) const {
    std::string out = "(";
    for (std::size_t i = 0; i < args.size(); ++i) {
        if (i > 0) out += ", ";
        out += (i < method.params.size() ? method.params[i].name : "p" + std::to_string(i));
        out += ": ";
        std::visit(
            [&out](const auto& v) {
                using T = std::decay_t<decltype(v)>;
                if constexpr (std::is_same_v<T, std::int64_t>) {
                    out += std::to_string(v);
                } else if constexpr (std::is_same_v<T, bool>) {
                    out += v ? "true" : "false";
                } else if constexpr (std::is_same_v<T, StrInput>) {
                    out += str_to_string(v);
                } else if constexpr (std::is_same_v<T, IntArrInput>) {
                    if (v.is_null) {
                        out += "null";
                    } else {
                        out += "{";
                        for (std::size_t j = 0; j < v.elems.size(); ++j) {
                            if (j > 0) out += ", ";
                            out += std::to_string(v.elems[j]);
                        }
                        out += "}";
                    }
                } else if constexpr (std::is_same_v<T, StrArrInput>) {
                    if (v.is_null) {
                        out += "null";
                    } else {
                        out += "{";
                        for (std::size_t j = 0; j < v.elems.size(); ++j) {
                            if (j > 0) out += ", ";
                            out += str_to_string(v.elems[j]);
                        }
                        out += "}";
                    }
                }
            },
            args[i]);
    }
    out += ")";
    return out;
}

Input default_input(const lang::Method& method) {
    Input in;
    in.args.reserve(method.params.size());
    for (const lang::Param& p : method.params) {
        switch (p.type) {
            case lang::Type::Int: in.args.emplace_back(std::int64_t{0}); break;
            case lang::Type::Bool: in.args.emplace_back(false); break;
            case lang::Type::Str: in.args.emplace_back(StrInput::null()); break;
            case lang::Type::IntArr: in.args.emplace_back(IntArrInput::null()); break;
            case lang::Type::StrArr: in.args.emplace_back(StrArrInput::null()); break;
            case lang::Type::Void: PI_CHECK(false, "void parameter");
        }
    }
    return in;
}

InputEvalEnv::InputEvalEnv(const lang::Method& method, const Input& input)
    : input_(input) {
    PI_CHECK(input.args.size() == method.params.size(),
             "input arity does not match method signature");
    param_handles_.resize(input.args.size(), -1);
    for (std::size_t i = 0; i < input.args.size(); ++i) {
        const ArgValue& a = input.args[i];
        if (const auto* s = std::get_if<StrInput>(&a); s && !s->is_null) {
            param_handles_[i] = register_str(*s);
        } else if (const auto* ia = std::get_if<IntArrInput>(&a); ia && !ia->is_null) {
            param_handles_[i] = register_int_arr(*ia);
        } else if (const auto* sa = std::get_if<StrArrInput>(&a); sa && !sa->is_null) {
            param_handles_[i] = register_str_arr(*sa);
        }
    }
}

int InputEvalEnv::register_str(const StrInput& s) {
    ObjEntry e;
    e.str = &s;
    objects_.push_back(std::move(e));
    return static_cast<int>(objects_.size()) - 1;
}

int InputEvalEnv::register_int_arr(const IntArrInput& a) {
    ObjEntry e;
    e.int_arr = &a;
    objects_.push_back(std::move(e));
    return static_cast<int>(objects_.size()) - 1;
}

int InputEvalEnv::register_str_arr(const StrArrInput& a) {
    // Register children first; objects_ may reallocate during recursion, so
    // collect handles before creating the parent entry.
    std::vector<int> handles;
    handles.reserve(a.elems.size());
    for (const StrInput& s : a.elems) {
        handles.push_back(s.is_null ? -1 : register_str(s));
    }
    ObjEntry e;
    e.str_arr = &a;
    e.elem_handles = std::move(handles);
    objects_.push_back(std::move(e));
    return static_cast<int>(objects_.size()) - 1;
}

sym::EvalValue InputEvalEnv::param(int index) const {
    if (index < 0 || static_cast<std::size_t>(index) >= input_.args.size())
        return sym::EvalValue::undef();
    const ArgValue& a = input_.args[static_cast<std::size_t>(index)];
    if (const auto* i = std::get_if<std::int64_t>(&a)) return sym::EvalValue::make_int(*i);
    if (const auto* b = std::get_if<bool>(&a)) return sym::EvalValue::make_bool(*b);
    const int handle = param_handles_[static_cast<std::size_t>(index)];
    if (handle < 0) return sym::EvalValue::make_null();
    return sym::EvalValue::make_obj(handle);
}

std::int64_t InputEvalEnv::obj_len(int handle) const {
    PI_CHECK(handle >= 0 && static_cast<std::size_t>(handle) < objects_.size(),
             "bad object handle");
    const ObjEntry& e = objects_[static_cast<std::size_t>(handle)];
    if (e.str) return static_cast<std::int64_t>(e.str->chars.size());
    if (e.int_arr) return static_cast<std::int64_t>(e.int_arr->elems.size());
    return static_cast<std::int64_t>(e.str_arr->elems.size());
}

sym::EvalValue InputEvalEnv::obj_elem(int handle, std::int64_t index) const {
    PI_CHECK(handle >= 0 && static_cast<std::size_t>(handle) < objects_.size(),
             "bad object handle");
    const ObjEntry& e = objects_[static_cast<std::size_t>(handle)];
    if (index < 0 || index >= obj_len(handle)) return sym::EvalValue::undef();
    const auto i = static_cast<std::size_t>(index);
    if (e.str) return sym::EvalValue::make_int(e.str->chars[i]);
    if (e.int_arr) return sym::EvalValue::make_int(e.int_arr->elems[i]);
    const int child = e.elem_handles[i];
    if (child < 0) return sym::EvalValue::make_null();
    return sym::EvalValue::make_obj(child);
}

}  // namespace preinfer::exec
