#include "src/exec/il_interp.h"

#include <cstddef>
#include <utility>
#include <vector>

#include "src/exec/heap.h"
#include "src/exec/shadow.h"
#include "src/il/compile.h"
#include "src/support/diagnostics.h"
#include "src/support/metrics.h"

namespace preinfer::exec {

namespace {

using core::ExceptionKind;
using shadow::AbortSignal;
using shadow::ExhaustedSignal;

/// One activation record. `ret_pc`/`ret_dst` describe where the caller
/// resumes; `default_ret` is what RetVoid yields (computed at call time,
/// after argument evaluation, exactly when the AST walker computes it).
struct Frame {
    const il::Function* fn = nullptr;
    std::size_t base = 0;
    std::size_t ret_pc = 0;
    std::size_t ret_dst = 0;
    CValue default_ret;
};

class Vm {
public:
    Vm(sym::ExprPool& pool, const il::Module& module, const lang::Method& method,
       const ExecLimits& limits, const Input& input)
        : pool_(pool), module_(module), limits_(limits), rec_(pool, limits, result_) {
        result_.covered_blocks.assign(static_cast<std::size_t>(method.num_blocks),
                                      false);
        const il::Function& entry = module.entry_function();
        regs_.resize(static_cast<std::size_t>(entry.num_regs));
        PI_CHECK(input.args.size() == method.params.size(),
                 "input arity does not match method signature");
        for (std::size_t i = 0; i < input.args.size(); ++i) {
            regs_[i] = shadow::materialize_arg(pool_, heap_, method.params[i].type,
                                               input.args[i], static_cast<int>(i));
        }
        frames_.push_back(Frame{&entry, 0, 0, 0, CValue{}});
    }

    RunResult run() {
        try {
            exec();
            result_.outcome = Outcome::normal();
        } catch (const AbortSignal& abort) {
            result_.outcome = Outcome::exception(abort.acl);
        } catch (const ExhaustedSignal&) {
            result_.outcome = Outcome::exhausted();
        }
        return std::move(result_);
    }

private:
    void exec();

    sym::ExprPool& pool_;
    const il::Module& module_;
    const ExecLimits& limits_;
    Heap heap_;
    std::vector<CValue> regs_;
    std::vector<Frame> frames_;
    RunResult result_;
    shadow::Recorder rec_;
};

void Vm::exec() {
    const il::Function* fn = frames_.back().fn;
    const il::Instr* code = fn->code.data();
    std::size_t base = frames_.back().base;
    CValue* R = regs_.data() + base;
    std::size_t pc = 0;
    const il::Instr* in = nullptr;

#if defined(__GNUC__) || defined(__clang__)
    // Direct-threaded dispatch: one indirect jump per instruction. Table
    // order must match il::Op exactly.
    static const void* kDispatch[il::kNumOps] = {
        &&L_Tick,      &&L_ConstInt, &&L_ConstBool, &&L_ConstNull, &&L_Move,
        &&L_BoolOf,    &&L_Neg,      &&L_Not,       &&L_Add,       &&L_Sub,
        &&L_Mul,       &&L_Div,      &&L_Mod,       &&L_CmpEq,     &&L_CmpNe,
        &&L_CmpLt,     &&L_CmpLe,    &&L_CmpGt,     &&L_CmpGe,     &&L_RefEqNull,
        &&L_RefNeNull, &&L_IsWhite,  &&L_Len,       &&L_Load,      &&L_Store,
        &&L_NewArr,    &&L_Guard,    &&L_Br,        &&L_BrCond,    &&L_Check,
        &&L_Precall,   &&L_Call,     &&L_Ret,       &&L_RetVoid,
    };
#define PI_OP(name) L_##name:
#define PI_NEXT()                                              \
    do {                                                       \
        in = &code[pc++];                                      \
        goto* kDispatch[static_cast<std::size_t>(in->op)];     \
    } while (0)
    PI_NEXT();
#else
    // Portable fallback: a switch loop with the same handler bodies.
#define PI_OP(name) case il::Op::name:
#define PI_NEXT() continue
    for (;;) {
        in = &code[pc++];
        switch (in->op) {
#endif

    PI_OP(Tick) {
        rec_.tick();
        // Block ids are per-method; only the entry method's coverage is
        // tracked (callee blocks would alias the entry method's ids).
        if (in->imm >= 0 && frames_.size() == 1 &&
            static_cast<std::size_t>(in->imm) < result_.covered_blocks.size()) {
            result_.covered_blocks[static_cast<std::size_t>(in->imm)] = true;
        }
    }
    PI_NEXT();

    PI_OP(ConstInt) { R[in->a] = CValue::make_int(in->imm); }
    PI_NEXT();

    PI_OP(ConstBool) { R[in->a] = CValue::make_bool(in->imm != 0); }
    PI_NEXT();

    PI_OP(ConstNull) { R[in->a] = CValue::make_ref(ObjRef::null(), pool_.null_const()); }
    PI_NEXT();

    PI_OP(Move) { R[in->a] = R[in->b]; }
    PI_NEXT();

    PI_OP(BoolOf) { R[in->a] = CValue::make_bool(R[in->b].as_bool()); }
    PI_NEXT();

    PI_OP(Neg) { R[in->a] = shadow::op_neg(pool_, R[in->b]); }
    PI_NEXT();

    PI_OP(Not) { R[in->a] = shadow::op_not(pool_, R[in->b]); }
    PI_NEXT();

    PI_OP(Add) { R[in->a] = shadow::op_add(pool_, R[in->b], R[in->c]); }
    PI_NEXT();

    PI_OP(Sub) { R[in->a] = shadow::op_sub(pool_, R[in->b], R[in->c]); }
    PI_NEXT();

    PI_OP(Mul) { R[in->a] = shadow::op_mul(pool_, R[in->b], R[in->c]); }
    PI_NEXT();

    PI_OP(Div) {
        R[in->a] = shadow::op_divmod(rec_, R[in->b], R[in->c], /*is_div=*/true,
                                     in->site, in->loc);
    }
    PI_NEXT();

    PI_OP(Mod) {
        R[in->a] = shadow::op_divmod(rec_, R[in->b], R[in->c], /*is_div=*/false,
                                     in->site, in->loc);
    }
    PI_NEXT();

    PI_OP(CmpEq) { R[in->a] = shadow::op_cmp(pool_, sym::Kind::Eq, R[in->b], R[in->c]); }
    PI_NEXT();

    PI_OP(CmpNe) { R[in->a] = shadow::op_cmp(pool_, sym::Kind::Ne, R[in->b], R[in->c]); }
    PI_NEXT();

    PI_OP(CmpLt) { R[in->a] = shadow::op_cmp(pool_, sym::Kind::Lt, R[in->b], R[in->c]); }
    PI_NEXT();

    PI_OP(CmpLe) { R[in->a] = shadow::op_cmp(pool_, sym::Kind::Le, R[in->b], R[in->c]); }
    PI_NEXT();

    PI_OP(CmpGt) { R[in->a] = shadow::op_cmp(pool_, sym::Kind::Gt, R[in->b], R[in->c]); }
    PI_NEXT();

    PI_OP(CmpGe) { R[in->a] = shadow::op_cmp(pool_, sym::Kind::Ge, R[in->b], R[in->c]); }
    PI_NEXT();

    PI_OP(RefEqNull) {
        R[in->a] = shadow::op_ref_null_cmp(pool_, R[in->b], /*is_ne=*/false);
    }
    PI_NEXT();

    PI_OP(RefNeNull) {
        R[in->a] = shadow::op_ref_null_cmp(pool_, R[in->b], /*is_ne=*/true);
    }
    PI_NEXT();

    PI_OP(IsWhite) { R[in->a] = shadow::op_is_whitespace(pool_, R[in->b]); }
    PI_NEXT();

    PI_OP(Len) { R[in->a] = shadow::op_len(rec_, heap_, R[in->b], in->site, in->loc); }
    PI_NEXT();

    PI_OP(Load) {
        // Index concretization pins a local copy, never the source register.
        CValue idx = R[in->c];
        R[in->a] = shadow::op_load(rec_, heap_, R[in->b], idx, in->site, in->loc);
    }
    PI_NEXT();

    PI_OP(Store) {
        CValue idx = R[in->b];
        shadow::op_store(rec_, heap_, R[in->a], idx, R[in->c], in->site, in->loc);
    }
    PI_NEXT();

    PI_OP(NewArr) {
        R[in->a] = shadow::op_new_array(rec_, heap_, in->imm != 0, R[in->b],
                                        in->site, in->loc);
    }
    PI_NEXT();

    PI_OP(Guard) {
        rec_.record_branch(R[in->a], in->site, ExceptionKind::None, in->loc);
    }
    PI_NEXT();

    PI_OP(Br) { pc = static_cast<std::size_t>(in->t0); }
    PI_NEXT();

    PI_OP(BrCond) {
        const CValue& v = R[in->a];
        rec_.record_branch(v, in->site, ExceptionKind::None, in->loc);
        pc = static_cast<std::size_t>(v.as_bool() ? in->t0 : in->t1);
    }
    PI_NEXT();

    PI_OP(Check) {
        rec_.check(R[in->a], in->site, static_cast<ExceptionKind>(in->imm), in->loc);
    }
    PI_NEXT();

    PI_OP(Precall) {
        if (static_cast<int>(frames_.size()) - 1 >= limits_.max_call_depth) {
            throw ExhaustedSignal{};
        }
    }
    PI_NEXT();

    PI_OP(Call) {
        const il::Function& callee =
            module_.functions[static_cast<std::size_t>(in->imm)];
        const std::size_t new_base = regs_.size();
        regs_.resize(new_base + static_cast<std::size_t>(callee.num_regs));
        for (std::size_t k = 0; k < in->b; ++k) {
            regs_[new_base + k] =
                regs_[base + fn->call_args[static_cast<std::size_t>(in->t0) + k]];
        }
        // After argument evaluation, before the callee body — the point at
        // which the AST walker computes the fall-off-the-end default (a
        // pool operation for reference return types).
        CValue def = shadow::default_value_of(pool_, callee.ret);
        frames_.push_back(
            Frame{&callee, new_base, pc, base + in->a, std::move(def)});
        fn = &callee;
        code = fn->code.data();
        base = new_base;
        R = regs_.data() + base;
        pc = 0;
    }
    PI_NEXT();

    PI_OP(Ret) {
        CValue v = regs_[base + in->a];
        const Frame popped = std::move(frames_.back());
        frames_.pop_back();
        regs_.resize(popped.base);
        if (frames_.empty()) return;  // entry returned: normal exit
        regs_[popped.ret_dst] = std::move(v);
        fn = frames_.back().fn;
        base = frames_.back().base;
        code = fn->code.data();
        R = regs_.data() + base;
        pc = popped.ret_pc;
    }
    PI_NEXT();

    PI_OP(RetVoid) {
        const Frame popped = std::move(frames_.back());
        frames_.pop_back();
        regs_.resize(popped.base);
        if (frames_.empty()) return;  // entry fell off the end: normal exit
        regs_[popped.ret_dst] = popped.default_ret;
        fn = frames_.back().fn;
        base = frames_.back().base;
        code = fn->code.data();
        R = regs_.data() + base;
        pc = popped.ret_pc;
    }
    PI_NEXT();

#if !defined(__GNUC__) && !defined(__clang__)
        }
    }
#endif
#undef PI_OP
#undef PI_NEXT
}

}  // namespace

IlInterpreter::IlInterpreter(sym::ExprPool& pool, const lang::Method& method,
                             ExecLimits limits, const lang::Program* program)
    : pool_(pool),
      method_(method),
      limits_(limits),
      module_(il::compile(method, program)) {
    if (support::metrics_enabled()) {
        static auto& functions =
            support::MetricsRegistry::global().counter("il.compile.functions");
        static auto& instructions =
            support::MetricsRegistry::global().counter("il.compile.instructions");
        functions.add(static_cast<std::int64_t>(module_.functions.size()));
        std::int64_t total = 0;
        for (const il::Function& f : module_.functions) {
            total += static_cast<std::int64_t>(f.code.size());
        }
        instructions.add(total);
    }
}

RunResult IlInterpreter::run(const Input& input) const {
    Vm vm(pool_, module_, method_, limits_, input);
    return vm.run();
}

}  // namespace preinfer::exec
