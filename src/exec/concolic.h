#pragma once

#include "src/exec/input.h"
#include "src/exec/outcome.h"
#include "src/lang/ast.h"
#include "src/sym/expr_pool.h"

namespace preinfer::exec {

/// Budgets that bound one concolic execution. MiniLang programs can loop
/// forever; hitting a budget yields Outcome::Exhausted, which the test
/// generator treats as "not a usable test" (Pex's timeouts behave the same).
struct ExecLimits {
    int max_steps = 200000;      ///< executed statements + loop iterations
    int max_path_preds = 4096;   ///< recorded path-condition length
    int max_call_depth = 64;     ///< nested user-method calls (recursion guard)
    std::int64_t max_alloc = 1 << 20;  ///< largest program-created array
};

/// Concolic (concrete + symbolic) interpreter for one MiniLang method:
/// executes an Input concretely while shadowing every value with a symbolic
/// expression over the method inputs, recording one path predicate per
/// executed branch — explicit branches (`if`/`while`/`&&`/`||`) and the
/// implicit runtime checks (null dereference, array bounds, division by
/// zero) plus explicit `assert`s, exactly the branch structure Pex sees.
///
/// Branch predicates whose expression constant-folds (no input dependence)
/// are not recorded, so path conditions contain only predicates over the
/// symbolic inputs, as in the paper's Tables I-II.
class ConcolicInterpreter {
public:
    /// `method` must be type-checked and block-labeled and must outlive the
    /// interpreter; `pool` accumulates expressions across runs so that
    /// predicates from different tests intern to identical pointers.
    /// `program` supplies callee methods for interprocedural execution
    /// (required when the method calls user-defined methods; it must own
    /// `method` or at least outlive the interpreter).
    ConcolicInterpreter(sym::ExprPool& pool, const lang::Method& method,
                        ExecLimits limits = {}, const lang::Program* program = nullptr);

    /// Executes one method-entry state. Never throws on MiniLang-level
    /// failures (they become Outcome::Exception).
    [[nodiscard]] RunResult run(const Input& input) const;

    [[nodiscard]] const lang::Method& method() const { return method_; }

private:
    sym::ExprPool& pool_;
    const lang::Method& method_;
    ExecLimits limits_;
    const lang::Program* program_;
};

}  // namespace preinfer::exec
