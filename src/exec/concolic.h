#pragma once

#include "src/exec/executor.h"
#include "src/exec/input.h"
#include "src/exec/outcome.h"
#include "src/lang/ast.h"
#include "src/sym/expr_pool.h"

namespace preinfer::exec {

/// AST-walking concolic (concrete + symbolic) interpreter for one MiniLang method:
/// executes an Input concretely while shadowing every value with a symbolic
/// expression over the method inputs, recording one path predicate per
/// executed branch — explicit branches (`if`/`while`/`&&`/`||`) and the
/// implicit runtime checks (null dereference, array bounds, division by
/// zero) plus explicit `assert`s, exactly the branch structure Pex sees.
///
/// Branch predicates whose expression constant-folds (no input dependence)
/// are not recorded, so path conditions contain only predicates over the
/// symbolic inputs, as in the paper's Tables I-II.
///
/// This is the reference semantics; the default production backend compiles
/// the method to the register bytecode IL instead (exec::IlInterpreter,
/// docs/IL.md) and must match it byte for byte. Pick via exec::make_executor.
class ConcolicInterpreter final : public Executor {
public:
    /// `method` must be type-checked and block-labeled and must outlive the
    /// interpreter; `pool` accumulates expressions across runs so that
    /// predicates from different tests intern to identical pointers.
    /// `program` supplies callee methods for interprocedural execution
    /// (required when the method calls user-defined methods; it must own
    /// `method` or at least outlive the interpreter).
    ConcolicInterpreter(sym::ExprPool& pool, const lang::Method& method,
                        ExecLimits limits = {}, const lang::Program* program = nullptr);

    /// Executes one method-entry state. Never throws on MiniLang-level
    /// failures (they become Outcome::Exception).
    [[nodiscard]] RunResult run(const Input& input) const override;

    [[nodiscard]] const lang::Method& method() const { return method_; }

private:
    sym::ExprPool& pool_;
    const lang::Method& method_;
    ExecLimits limits_;
    const lang::Program* program_;
};

}  // namespace preinfer::exec
