#include "src/exec/shadow.h"

#include <utility>

#include "src/support/diagnostics.h"

namespace preinfer::exec::shadow {

using core::AclId;
using core::ExceptionKind;
using sym::Expr;

const Expr* sym_of(sym::ExprPool& pool, const CValue& v) {
    if (v.sym) return v.sym;
    switch (v.tag) {
        case CValue::Tag::Int: return pool.int_const(v.i);
        case CValue::Tag::Bool: return pool.bool_const(v.i != 0);
        case CValue::Tag::Ref:
            PI_CHECK(v.ref.is_null(), "concrete non-null reference has no expression");
            return pool.null_const();
    }
    PI_CHECK(false, "unhandled value tag");
    return nullptr;
}

void Recorder::record_branch(const CValue& cond, int site_id, ExceptionKind check,
                             support::SourceLoc loc) {
    if (!cond.sym) return;
    const Expr* taken = cond.as_bool() ? cond.sym : pool_.negate(cond.sym);
    if (taken->kind == sym::Kind::BoolConst) return;
    if (static_cast<int>(result_.pc.preds.size()) >= limits_.max_path_preds)
        throw ExhaustedSignal{};
    result_.pc.preds.push_back({taken, site_id, check, loc});
}

void Recorder::check(const CValue& cond, int site_id, ExceptionKind kind,
                     support::SourceLoc loc) {
    result_.pc.visits.push_back(
        {AclId{site_id, kind}, static_cast<int>(result_.pc.preds.size())});
    record_branch(cond, site_id, kind, loc);
    if (!cond.as_bool()) throw AbortSignal{AclId{site_id, kind}};
}

HeapObject& Recorder::access(Heap& heap, const CValue& base, CValue& idx,
                             int site_id, support::SourceLoc loc) {
    null_check(base, site_id, loc);
    HeapObject& obj = heap.get_mut(base.ref);

    // Index concretization: when a collection is indexed by a symbolic,
    // non-constant expression, pin the index to the observed value so
    // that element identities stay concrete (standard concolic
    // treatment; loop counters fold to constants and are unaffected).
    if (idx.sym && idx.sym->kind != sym::Kind::IntConst) {
        CValue pin = CValue::make_bool(true, pool_.eq(idx.sym, pool_.int_const(idx.i)));
        record_branch(pin, site_id, ExceptionKind::None, loc);
        idx.sym = pool_.int_const(idx.i);
    }

    const Expr* len_sym = obj.len_sym;
    CValue lower = CValue::make_bool(
        idx.i >= 0,
        (idx.sym || len_sym) ? pool_.ge(sym_of(idx), pool_.int_const(0)) : nullptr);
    // A concrete index against a concrete length folds away entirely.
    if (lower.sym && lower.sym->kind == sym::Kind::BoolConst) lower.sym = nullptr;
    check(lower, site_id, ExceptionKind::IndexOutOfRange, loc);

    const Expr* len_expr = len_sym ? len_sym : pool_.int_const(obj.len());
    CValue upper = CValue::make_bool(idx.i < obj.len(), nullptr);
    if (idx.sym || len_sym) {
        const Expr* e = pool_.lt(sym_of(idx), len_expr);
        if (e->kind != sym::Kind::BoolConst) upper.sym = e;
    }
    check(upper, site_id, ExceptionKind::IndexOutOfRange, loc);
    return obj;
}

void Recorder::null_check(const CValue& base, int site_id, support::SourceLoc loc) {
    PI_CHECK(base.tag == CValue::Tag::Ref, "null check on non-reference");
    const Expr* is_null_expr = base.sym ? pool_.is_null(base.sym) : nullptr;
    CValue ok = CValue::make_bool(!base.ref.is_null(), nullptr);
    if (is_null_expr && is_null_expr->kind != sym::Kind::BoolConst) {
        ok.sym = pool_.not_(is_null_expr);
    }
    check(ok, site_id, ExceptionKind::NullReference, loc);
}

// --- input materialization ------------------------------------------------

namespace {

CValue materialize_str(sym::ExprPool& pool, Heap& heap, const StrInput& s,
                       const Expr* symref) {
    if (s.is_null) return CValue::make_ref(ObjRef::null(), symref);
    HeapObject obj;
    obj.kind = ObjKind::Str;
    obj.symref = symref;
    obj.len_sym = pool.len(symref);
    obj.cells.reserve(s.chars.size());
    for (std::size_t k = 0; k < s.chars.size(); ++k) {
        obj.cells.push_back(CValue::make_int(
            s.chars[k],
            pool.select(symref, pool.int_const(static_cast<std::int64_t>(k)),
                        sym::Sort::Int)));
    }
    return CValue::make_ref(heap.alloc(std::move(obj)), symref);
}

CValue materialize_int_arr(sym::ExprPool& pool, Heap& heap, const IntArrInput& a,
                           const Expr* symref) {
    if (a.is_null) return CValue::make_ref(ObjRef::null(), symref);
    HeapObject obj;
    obj.kind = ObjKind::IntArr;
    obj.symref = symref;
    obj.len_sym = pool.len(symref);
    obj.cells.reserve(a.elems.size());
    for (std::size_t k = 0; k < a.elems.size(); ++k) {
        obj.cells.push_back(CValue::make_int(
            a.elems[k],
            pool.select(symref, pool.int_const(static_cast<std::int64_t>(k)),
                        sym::Sort::Int)));
    }
    return CValue::make_ref(heap.alloc(std::move(obj)), symref);
}

CValue materialize_str_arr(sym::ExprPool& pool, Heap& heap, const StrArrInput& a,
                           const Expr* symref) {
    if (a.is_null) return CValue::make_ref(ObjRef::null(), symref);
    HeapObject obj;
    obj.kind = ObjKind::StrArr;
    obj.symref = symref;
    obj.len_sym = pool.len(symref);
    obj.cells.reserve(a.elems.size());
    for (std::size_t k = 0; k < a.elems.size(); ++k) {
        const Expr* elem_sym = pool.select(
            symref, pool.int_const(static_cast<std::int64_t>(k)), sym::Sort::Obj);
        obj.cells.push_back(materialize_str(pool, heap, a.elems[k], elem_sym));
    }
    return CValue::make_ref(heap.alloc(std::move(obj)), symref);
}

}  // namespace

CValue materialize_arg(sym::ExprPool& pool, Heap& heap, lang::Type type,
                       const ArgValue& arg, int param_index) {
    switch (type) {
        case lang::Type::Int:
            return CValue::make_int(std::get<std::int64_t>(arg),
                                    pool.param(param_index, sym::Sort::Int));
        case lang::Type::Bool:
            return CValue::make_bool(std::get<bool>(arg),
                                     pool.param(param_index, sym::Sort::Bool));
        case lang::Type::Str:
            return materialize_str(pool, heap, std::get<StrInput>(arg),
                                   pool.param(param_index, sym::Sort::Obj));
        case lang::Type::IntArr:
            return materialize_int_arr(pool, heap, std::get<IntArrInput>(arg),
                                       pool.param(param_index, sym::Sort::Obj));
        case lang::Type::StrArr:
            return materialize_str_arr(pool, heap, std::get<StrArrInput>(arg),
                                       pool.param(param_index, sym::Sort::Obj));
        case lang::Type::Void: PI_CHECK(false, "void parameter");
    }
    PI_CHECK(false, "unhandled parameter type");
    return {};
}

CValue default_value_of(sym::ExprPool& pool, lang::Type t) {
    switch (t) {
        case lang::Type::Int: return CValue::make_int(0);
        case lang::Type::Bool: return CValue::make_bool(false);
        case lang::Type::Str:
        case lang::Type::IntArr:
        case lang::Type::StrArr:
            return CValue::make_ref(ObjRef::null(), pool.null_const());
        case lang::Type::Void: return CValue::make_int(0);
    }
    return CValue::make_int(0);
}

// --- operator semantics ---------------------------------------------------

CValue op_neg(sym::ExprPool& pool, const CValue& v) {
    return CValue::make_int(wrap_sub(0, v.i), v.sym ? pool.neg(v.sym) : nullptr);
}

CValue op_not(sym::ExprPool& pool, const CValue& v) {
    return CValue::make_bool(v.i == 0, v.sym ? pool.not_(v.sym) : nullptr);
}

CValue op_add(sym::ExprPool& pool, const CValue& l, const CValue& r) {
    const bool symbolic = l.sym || r.sym;
    return CValue::make_int(
        wrap_add(l.i, r.i),
        symbolic ? pool.add(sym_of(pool, l), sym_of(pool, r)) : nullptr);
}

CValue op_sub(sym::ExprPool& pool, const CValue& l, const CValue& r) {
    const bool symbolic = l.sym || r.sym;
    return CValue::make_int(
        wrap_sub(l.i, r.i),
        symbolic ? pool.sub(sym_of(pool, l), sym_of(pool, r)) : nullptr);
}

CValue op_mul(sym::ExprPool& pool, const CValue& l, const CValue& r) {
    const bool symbolic = l.sym || r.sym;
    return CValue::make_int(
        wrap_mul(l.i, r.i),
        symbolic ? pool.mul(sym_of(pool, l), sym_of(pool, r)) : nullptr);
}

CValue op_divmod(Recorder& rec, const CValue& l, const CValue& r, bool is_div,
                 int site_id, support::SourceLoc loc) {
    sym::ExprPool& pool = rec.pool();
    CValue nonzero = CValue::make_bool(r.i != 0, nullptr);
    if (r.sym) {
        const Expr* ne0 = pool.ne(r.sym, pool.int_const(0));
        if (ne0->kind != sym::Kind::BoolConst) nonzero.sym = ne0;
    }
    rec.check(nonzero, site_id, ExceptionKind::DivideByZero, loc);
    const bool symbolic = l.sym || r.sym;
    if (is_div) {
        return CValue::make_int(
            safe_div(l.i, r.i),
            symbolic ? pool.div(sym_of(pool, l), sym_of(pool, r)) : nullptr);
    }
    return CValue::make_int(
        safe_mod(l.i, r.i),
        symbolic ? pool.mod(sym_of(pool, l), sym_of(pool, r)) : nullptr);
}

CValue op_cmp(sym::ExprPool& pool, sym::Kind op, const CValue& l, const CValue& r) {
    bool concrete = false;
    switch (op) {
        case sym::Kind::Eq: concrete = l.i == r.i; break;
        case sym::Kind::Ne: concrete = l.i != r.i; break;
        case sym::Kind::Lt: concrete = l.i < r.i; break;
        case sym::Kind::Le: concrete = l.i <= r.i; break;
        case sym::Kind::Gt: concrete = l.i > r.i; break;
        case sym::Kind::Ge: concrete = l.i >= r.i; break;
        default: PI_CHECK(false, "non-comparison kind in op_cmp");
    }
    const bool symbolic = l.sym || r.sym;
    return CValue::make_bool(
        concrete, symbolic ? pool.cmp(op, sym_of(pool, l), sym_of(pool, r)) : nullptr);
}

CValue op_ref_null_cmp(sym::ExprPool& pool, const CValue& refside, bool is_ne) {
    bool value = refside.ref.is_null();
    const Expr* s = nullptr;
    if (refside.sym) {
        const Expr* isnull = pool.is_null(refside.sym);
        if (isnull->kind != sym::Kind::BoolConst) s = isnull;
    }
    if (is_ne) {
        value = !value;
        if (s) s = pool.not_(s);
    }
    return CValue::make_bool(value, s);
}

CValue op_is_whitespace(sym::ExprPool& pool, const CValue& v) {
    return CValue::make_bool(sym::ExprPool::whitespace_code_point(v.i),
                             v.sym ? pool.is_whitespace(v.sym) : nullptr);
}

CValue op_len(Recorder& rec, Heap& heap, const CValue& base, int site_id,
              support::SourceLoc loc) {
    rec.null_check(base, site_id, loc);
    const HeapObject& obj = heap.get(base.ref);
    return CValue::make_int(obj.len(), obj.len_sym);
}

CValue op_load(Recorder& rec, Heap& heap, const CValue& base, CValue& idx,
               int site_id, support::SourceLoc loc) {
    HeapObject& obj = rec.access(heap, base, idx, site_id, loc);
    return obj.cells[static_cast<std::size_t>(idx.i)];
}

void op_store(Recorder& rec, Heap& heap, const CValue& base, CValue& idx,
              const CValue& rhs, int site_id, support::SourceLoc loc) {
    HeapObject& obj = rec.access(heap, base, idx, site_id, loc);
    obj.cells[static_cast<std::size_t>(idx.i)] = rhs;
}

CValue op_new_array(Recorder& rec, Heap& heap, bool str_elems, CValue n,
                    int site_id, support::SourceLoc loc) {
    sym::ExprPool& pool = rec.pool();
    // Pin a symbolic allocation size (the heap needs a concrete length),
    // then range-check it.
    if (n.sym && n.sym->kind != sym::Kind::IntConst) {
        CValue pin = CValue::make_bool(true, pool.eq(n.sym, pool.int_const(n.i)));
        rec.record_branch(pin, site_id, ExceptionKind::None, loc);
        n.sym = pool.int_const(n.i);
    }
    CValue nonneg = CValue::make_bool(n.i >= 0, nullptr);
    rec.check(nonneg, site_id, ExceptionKind::IndexOutOfRange, loc);
    if (n.i > rec.limits().max_alloc) throw ExhaustedSignal{};
    HeapObject obj;
    obj.kind = str_elems ? ObjKind::StrArr : ObjKind::IntArr;
    if (str_elems) {
        obj.cells.assign(static_cast<std::size_t>(n.i),
                         CValue::make_ref(ObjRef::null(), nullptr));
    } else {
        obj.cells.assign(static_cast<std::size_t>(n.i), CValue::make_int(0));
    }
    return CValue::make_ref(heap.alloc(std::move(obj)), nullptr);
}

}  // namespace preinfer::exec::shadow
