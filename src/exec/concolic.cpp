#include "src/exec/concolic.h"

#include <unordered_map>

#include "src/exec/heap.h"
#include "src/exec/shadow.h"
#include "src/support/diagnostics.h"

namespace preinfer::exec {

namespace {

using core::ExceptionKind;
using lang::BinOp;
using lang::EKind;
using lang::ExprNode;
using lang::SKind;
using lang::StmtNode;
using lang::UnOp;
using shadow::AbortSignal;
using shadow::ExhaustedSignal;
using sym::Expr;

/// Unwinds the statement walk on `return`, carrying the returned value.
struct ReturnSignal {
    CValue value;
    bool has_value = false;
};

/// Unwinds the enclosing loop iteration on `break` / `continue`.
struct BreakSignal {};
struct ContinueSignal {};

class Machine {
public:
    Machine(sym::ExprPool& pool, const lang::Method& method, const ExecLimits& limits,
            const Input& input, const lang::Program* program)
        : pool_(pool),
          method_(method),
          limits_(limits),
          program_(program),
          rec_(pool, limits, result_) {
        result_.covered_blocks.assign(static_cast<std::size_t>(method.num_blocks), false);
        scopes_.emplace_back();
        materialize_params(input);
    }

    RunResult run() {
        try {
            exec_list(method_.body);
            result_.outcome = Outcome::normal();
        } catch (const ReturnSignal&) {
            result_.outcome = Outcome::normal();
        } catch (const AbortSignal& abort) {
            result_.outcome = Outcome::exception(abort.acl);
        } catch (const ExhaustedSignal&) {
            result_.outcome = Outcome::exhausted();
        }
        return std::move(result_);
    }

private:
    // --- input materialization ---------------------------------------------
    void materialize_params(const Input& input) {
        PI_CHECK(input.args.size() == method_.params.size(),
                 "input arity does not match method signature");
        for (std::size_t i = 0; i < input.args.size(); ++i) {
            const lang::Param& p = method_.params[i];
            CValue v = shadow::materialize_arg(pool_, heap_, p.type, input.args[i],
                                               static_cast<int>(i));
            scopes_.front().emplace(p.name, v);
        }
    }

    // --- variable environment -------------------------------------------------
    CValue& lookup(const std::string& name, support::SourceLoc loc) {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            if (auto f = it->find(name); f != it->end()) return f->second;
        }
        PI_CHECK(false, "undeclared variable '" + name + "' at " + loc.to_string() +
                            " survived type checking");
        throw support::InternalError("unreachable");
    }

    // --- statements -------------------------------------------------------------
    void exec_list(const std::vector<lang::StmtPtr>& stmts) {
        // The scope must pop even when a signal (return / break / continue /
        // abort) unwinds the list, so that shadowed outer bindings become
        // visible again — lexical scoping, exactly the register scoping the
        // IL compiler bakes in at compile time (docs/IL.md).
        struct ScopeGuard {
            std::vector<std::unordered_map<std::string, CValue>>& scopes;
            ~ScopeGuard() { scopes.pop_back(); }
        };
        scopes_.emplace_back();
        ScopeGuard guard{scopes_};
        for (const lang::StmtPtr& s : stmts) exec_stmt(*s);
    }

    void exec_stmt(const StmtNode& s) {
        rec_.tick();
        // Block ids are per-method; only the entry method's coverage is
        // tracked (callee blocks would alias the entry method's ids).
        if (call_depth_ == 0 && s.block_id >= 0 &&
            static_cast<std::size_t>(s.block_id) < result_.covered_blocks.size()) {
            result_.covered_blocks[static_cast<std::size_t>(s.block_id)] = true;
        }
        switch (s.kind) {
            case SKind::VarDecl: {
                CValue v = eval(*s.expr);
                scopes_.back().emplace(s.name, v);
                break;
            }
            case SKind::Assign: {
                if (s.index) {
                    exec_element_assign(s);
                } else {
                    CValue v = eval(*s.expr);
                    lookup(s.name, s.loc) = v;
                }
                break;
            }
            case SKind::If: {
                CValue cond = eval(*s.expr);
                rec_.record_branch(cond, s.expr->node_id, ExceptionKind::None,
                                   s.expr->loc);
                if (cond.as_bool()) {
                    exec_list(s.body);
                } else {
                    exec_list(s.else_body);
                }
                break;
            }
            case SKind::While: {
                for (;;) {
                    rec_.tick();
                    CValue cond = eval(*s.expr);
                    rec_.record_branch(cond, s.expr->node_id, ExceptionKind::None,
                                       s.expr->loc);
                    if (!cond.as_bool()) break;
                    bool exited = false;
                    try {
                        exec_list(s.body);
                    } catch (const ContinueSignal&) {
                        // fall through to the step
                    } catch (const BreakSignal&) {
                        exited = true;
                    }
                    if (exited) break;
                    // A for-loop's increment runs even after `continue`.
                    if (s.step) exec_stmt(*s.step);
                }
                break;
            }
            case SKind::Return: {
                ReturnSignal ret;
                if (s.expr) {
                    ret.value = eval(*s.expr);
                    ret.has_value = true;
                }
                throw ret;
            }
            case SKind::Assert: {
                CValue cond = eval(*s.expr);
                rec_.check(cond, s.node_id, ExceptionKind::AssertionViolation, s.loc);
                break;
            }
            case SKind::Block:
                exec_list(s.body);
                break;
            case SKind::Break:
                throw BreakSignal{};
            case SKind::Continue:
                throw ContinueSignal{};
        }
    }

    void exec_element_assign(const StmtNode& s) {
        CValue base = lookup(s.name, s.loc);
        CValue idx = eval(*s.index);
        CValue rhs = eval(*s.expr);
        shadow::op_store(rec_, heap_, base, idx, rhs, s.node_id, s.loc);
    }

    // --- expressions ------------------------------------------------------------
    CValue eval(const ExprNode& e) {
        switch (e.kind) {
            case EKind::IntLit: return CValue::make_int(e.int_value);
            case EKind::BoolLit: return CValue::make_bool(e.bool_value);
            case EKind::NullLit:
                return CValue::make_ref(ObjRef::null(), pool_.null_const());
            case EKind::VarRef: return lookup(e.name, e.loc);
            case EKind::Unary: return eval_unary(e);
            case EKind::Binary: return eval_binary(e);
            case EKind::Index: return eval_index(e);
            case EKind::Len: return eval_len(e);
            case EKind::Call: return eval_call(e);
        }
        PI_CHECK(false, "unhandled expression kind");
        return {};
    }

    CValue eval_unary(const ExprNode& e) {
        CValue v = eval(*e.lhs);
        if (e.un == UnOp::Neg) return shadow::op_neg(pool_, v);
        return shadow::op_not(pool_, v);
    }

    CValue eval_binary(const ExprNode& e) {
        // Short-circuit boolean operators are branches (as in compiled IL):
        // each evaluated operand contributes its own path predicate, and the
        // operator's value is concrete on this path.
        if (e.bin == BinOp::And || e.bin == BinOp::Or) {
            CValue l = eval(*e.lhs);
            rec_.record_branch(l, e.lhs->node_id, ExceptionKind::None, e.lhs->loc);
            const bool short_circuit =
                (e.bin == BinOp::And) ? !l.as_bool() : l.as_bool();
            if (short_circuit) return CValue::make_bool(l.as_bool());
            CValue r = eval(*e.rhs);
            rec_.record_branch(r, e.rhs->node_id, ExceptionKind::None, e.rhs->loc);
            return CValue::make_bool(r.as_bool());
        }

        // Reference equality (against null only; enforced by the checker).
        if ((e.bin == BinOp::Eq || e.bin == BinOp::Ne) &&
            lang::is_reference_type(e.lhs->type)) {
            CValue l = eval(*e.lhs);
            CValue r = eval(*e.rhs);
            const CValue& refside = (e.rhs->kind == EKind::NullLit) ? l : r;
            return shadow::op_ref_null_cmp(pool_, refside, e.bin == BinOp::Ne);
        }

        CValue l = eval(*e.lhs);
        CValue r = eval(*e.rhs);
        switch (e.bin) {
            case BinOp::Add: return shadow::op_add(pool_, l, r);
            case BinOp::Sub: return shadow::op_sub(pool_, l, r);
            case BinOp::Mul: return shadow::op_mul(pool_, l, r);
            case BinOp::Div:
            case BinOp::Mod:
                return shadow::op_divmod(rec_, l, r, e.bin == BinOp::Div, e.node_id,
                                         e.loc);
            case BinOp::Eq: return shadow::op_cmp(pool_, sym::Kind::Eq, l, r);
            case BinOp::Ne: return shadow::op_cmp(pool_, sym::Kind::Ne, l, r);
            case BinOp::Lt: return shadow::op_cmp(pool_, sym::Kind::Lt, l, r);
            case BinOp::Le: return shadow::op_cmp(pool_, sym::Kind::Le, l, r);
            case BinOp::Gt: return shadow::op_cmp(pool_, sym::Kind::Gt, l, r);
            case BinOp::Ge: return shadow::op_cmp(pool_, sym::Kind::Ge, l, r);
            case BinOp::And: case BinOp::Or: break;  // handled above
        }
        PI_CHECK(false, "unhandled binary operator");
        return {};
    }

    CValue eval_index(const ExprNode& e) {
        CValue base = eval(*e.lhs);
        CValue idx = eval(*e.rhs);
        return shadow::op_load(rec_, heap_, base, idx, e.node_id, e.loc);
    }

    CValue eval_len(const ExprNode& e) {
        CValue base = eval(*e.lhs);
        return shadow::op_len(rec_, heap_, base, e.node_id, e.loc);
    }

    CValue eval_call(const ExprNode& e) {
        if (e.name == "iswhitespace") {
            CValue v = eval(*e.args[0]);
            return shadow::op_is_whitespace(pool_, v);
        }
        if (e.name == "newintarray" || e.name == "newstrarray") {
            CValue n = eval(*e.args[0]);
            return shadow::op_new_array(rec_, heap_, e.name == "newstrarray", n,
                                        e.node_id, e.loc);
        }
        // User-defined method call: bind evaluated arguments as the callee's
        // parameters, execute its body in a fresh frame, and unwind on
        // return. Branch predicates and assertion checks recorded inside
        // the callee accumulate into the same path condition (Section III:
        // "collected from the executed branch conditions in m and its
        // (direct and indirect) callee methods").
        PI_CHECK(program_ != nullptr,
                 "call to '" + e.name + "' without a program context");
        const lang::Method* callee = program_->find(e.name);
        PI_CHECK(callee != nullptr,
                 "unknown method '" + e.name + "' survived type checking");
        if (call_depth_ >= limits_.max_call_depth) throw ExhaustedSignal{};

        std::vector<CValue> args;
        args.reserve(e.args.size());
        for (const lang::ExprPtr& a : e.args) args.push_back(eval(*a));

        std::vector<std::unordered_map<std::string, CValue>> saved_scopes =
            std::move(scopes_);
        scopes_.clear();
        scopes_.emplace_back();
        for (std::size_t i = 0; i < args.size(); ++i) {
            scopes_.back().emplace(callee->params[i].name, args[i]);
        }
        ++call_depth_;

        CValue result = shadow::default_value_of(pool_, callee->ret);
        try {
            exec_list(callee->body);
        } catch (const ReturnSignal& ret) {
            if (ret.has_value) result = ret.value;
        } catch (...) {
            --call_depth_;
            scopes_ = std::move(saved_scopes);
            throw;
        }
        --call_depth_;
        scopes_ = std::move(saved_scopes);
        return result;
    }

    sym::ExprPool& pool_;
    const lang::Method& method_;
    const ExecLimits& limits_;
    const lang::Program* program_;
    int call_depth_ = 0;
    Heap heap_;
    std::vector<std::unordered_map<std::string, CValue>> scopes_;
    RunResult result_;
    shadow::Recorder rec_;
};

}  // namespace

ConcolicInterpreter::ConcolicInterpreter(sym::ExprPool& pool, const lang::Method& method,
                                         ExecLimits limits, const lang::Program* program)
    : pool_(pool), method_(method), limits_(limits), program_(program) {}

RunResult ConcolicInterpreter::run(const Input& input) const {
    Machine machine(pool_, method_, limits_, input, program_);
    return machine.run();
}

}  // namespace preinfer::exec
