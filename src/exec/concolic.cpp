#include "src/exec/concolic.h"

#include <unordered_map>

#include "src/exec/heap.h"
#include "src/support/diagnostics.h"

namespace preinfer::exec {

namespace {

using core::AclId;
using core::ExceptionKind;
using lang::BinOp;
using lang::EKind;
using lang::ExprNode;
using lang::SKind;
using lang::StmtNode;
using lang::UnOp;
using sym::Expr;

std::int64_t wrap_add(std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) +
                                     static_cast<std::uint64_t>(b));
}
std::int64_t wrap_sub(std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) -
                                     static_cast<std::uint64_t>(b));
}
std::int64_t wrap_mul(std::int64_t a, std::int64_t b) {
    return static_cast<std::int64_t>(static_cast<std::uint64_t>(a) *
                                     static_cast<std::uint64_t>(b));
}
std::int64_t safe_div(std::int64_t a, std::int64_t b) {
    if (b == -1) return wrap_sub(0, a);  // avoids INT64_MIN / -1 overflow UB
    return a / b;
}
std::int64_t safe_mod(std::int64_t a, std::int64_t b) {
    if (b == -1) return 0;
    return a % b;
}

/// Unwinds execution when an assertion (implicit or explicit) fails.
struct AbortSignal {
    AclId acl;
};

/// Unwinds execution when a budget is exceeded.
struct ExhaustedSignal {};

/// Unwinds the statement walk on `return`, carrying the returned value.
struct ReturnSignal {
    CValue value;
    bool has_value = false;
};

/// Unwinds the enclosing loop iteration on `break` / `continue`.
struct BreakSignal {};
struct ContinueSignal {};

class Machine {
public:
    Machine(sym::ExprPool& pool, const lang::Method& method, const ExecLimits& limits,
            const Input& input, const lang::Program* program)
        : pool_(pool), method_(method), limits_(limits), program_(program) {
        result_.covered_blocks.assign(static_cast<std::size_t>(method.num_blocks), false);
        scopes_.emplace_back();
        materialize_params(input);
    }

    RunResult run() {
        try {
            exec_list(method_.body);
            result_.outcome = Outcome::normal();
        } catch (const ReturnSignal&) {
            result_.outcome = Outcome::normal();
        } catch (const AbortSignal& abort) {
            result_.outcome = Outcome::exception(abort.acl);
        } catch (const ExhaustedSignal&) {
            result_.outcome = Outcome::exhausted();
        }
        return std::move(result_);
    }

private:
    // --- input materialization ---------------------------------------------
    void materialize_params(const Input& input) {
        PI_CHECK(input.args.size() == method_.params.size(),
                 "input arity does not match method signature");
        for (std::size_t i = 0; i < input.args.size(); ++i) {
            const int pi = static_cast<int>(i);
            const lang::Param& p = method_.params[i];
            const ArgValue& a = input.args[i];
            CValue v;
            switch (p.type) {
                case lang::Type::Int:
                    v = CValue::make_int(std::get<std::int64_t>(a),
                                         pool_.param(pi, sym::Sort::Int));
                    break;
                case lang::Type::Bool:
                    v = CValue::make_bool(std::get<bool>(a),
                                          pool_.param(pi, sym::Sort::Bool));
                    break;
                case lang::Type::Str:
                    v = materialize_str(std::get<StrInput>(a),
                                        pool_.param(pi, sym::Sort::Obj));
                    break;
                case lang::Type::IntArr:
                    v = materialize_int_arr(std::get<IntArrInput>(a),
                                            pool_.param(pi, sym::Sort::Obj));
                    break;
                case lang::Type::StrArr:
                    v = materialize_str_arr(std::get<StrArrInput>(a),
                                            pool_.param(pi, sym::Sort::Obj));
                    break;
                case lang::Type::Void:
                    PI_CHECK(false, "void parameter");
            }
            scopes_.front().emplace(p.name, v);
        }
    }

    CValue materialize_str(const StrInput& s, const Expr* symref) {
        if (s.is_null) return CValue::make_ref(ObjRef::null(), symref);
        HeapObject obj;
        obj.kind = ObjKind::Str;
        obj.symref = symref;
        obj.len_sym = pool_.len(symref);
        obj.cells.reserve(s.chars.size());
        for (std::size_t k = 0; k < s.chars.size(); ++k) {
            obj.cells.push_back(CValue::make_int(
                s.chars[k],
                pool_.select(symref, pool_.int_const(static_cast<std::int64_t>(k)),
                             sym::Sort::Int)));
        }
        return CValue::make_ref(heap_.alloc(std::move(obj)), symref);
    }

    CValue materialize_int_arr(const IntArrInput& a, const Expr* symref) {
        if (a.is_null) return CValue::make_ref(ObjRef::null(), symref);
        HeapObject obj;
        obj.kind = ObjKind::IntArr;
        obj.symref = symref;
        obj.len_sym = pool_.len(symref);
        obj.cells.reserve(a.elems.size());
        for (std::size_t k = 0; k < a.elems.size(); ++k) {
            obj.cells.push_back(CValue::make_int(
                a.elems[k],
                pool_.select(symref, pool_.int_const(static_cast<std::int64_t>(k)),
                             sym::Sort::Int)));
        }
        return CValue::make_ref(heap_.alloc(std::move(obj)), symref);
    }

    CValue materialize_str_arr(const StrArrInput& a, const Expr* symref) {
        if (a.is_null) return CValue::make_ref(ObjRef::null(), symref);
        HeapObject obj;
        obj.kind = ObjKind::StrArr;
        obj.symref = symref;
        obj.len_sym = pool_.len(symref);
        obj.cells.reserve(a.elems.size());
        for (std::size_t k = 0; k < a.elems.size(); ++k) {
            const Expr* elem_sym = pool_.select(
                symref, pool_.int_const(static_cast<std::int64_t>(k)), sym::Sort::Obj);
            obj.cells.push_back(materialize_str(a.elems[k], elem_sym));
        }
        return CValue::make_ref(heap_.alloc(std::move(obj)), symref);
    }

    // --- path recording ------------------------------------------------------
    /// Symbolic expression of an int/bool value (literal when concrete).
    const Expr* sym_of(const CValue& v) {
        if (v.sym) return v.sym;
        switch (v.tag) {
            case CValue::Tag::Int: return pool_.int_const(v.i);
            case CValue::Tag::Bool: return pool_.bool_const(v.i != 0);
            case CValue::Tag::Ref:
                PI_CHECK(v.ref.is_null(), "concrete non-null reference has no expression");
                return pool_.null_const();
        }
        PI_CHECK(false, "unhandled value tag");
        return nullptr;
    }

    /// Records a branch predicate in taken polarity; drops input-independent
    /// (constant-folding) predicates.
    void record_branch(const CValue& cond, int site_id, ExceptionKind check,
                       support::SourceLoc loc) {
        if (!cond.sym) return;
        const Expr* taken = cond.as_bool() ? cond.sym : pool_.negate(cond.sym);
        if (taken->kind == sym::Kind::BoolConst) return;
        if (static_cast<int>(result_.pc.preds.size()) >= limits_.max_path_preds)
            throw ExhaustedSignal{};
        result_.pc.preds.push_back({taken, site_id, check, loc});
    }

    /// An assertion check: records the check-derived branch predicate and
    /// aborts the execution when the check fails. This single entry point
    /// implements both implicit checks and explicit `assert`. The arrival
    /// itself is recorded as a visit even when the condition constant-folds
    /// and leaves no predicate behind.
    void check(const CValue& cond, int site_id, ExceptionKind kind,
               support::SourceLoc loc) {
        result_.pc.visits.push_back(
            {AclId{site_id, kind}, static_cast<int>(result_.pc.preds.size())});
        record_branch(cond, site_id, kind, loc);
        if (!cond.as_bool()) throw AbortSignal{AclId{site_id, kind}};
    }

    void tick() {
        if (++result_.steps > limits_.max_steps) throw ExhaustedSignal{};
    }

    // --- variable environment -------------------------------------------------
    CValue& lookup(const std::string& name, support::SourceLoc loc) {
        for (auto it = scopes_.rbegin(); it != scopes_.rend(); ++it) {
            if (auto f = it->find(name); f != it->end()) return f->second;
        }
        PI_CHECK(false, "undeclared variable '" + name + "' at " + loc.to_string() +
                            " survived type checking");
        throw support::InternalError("unreachable");
    }

    // --- statements -------------------------------------------------------------
    void exec_list(const std::vector<lang::StmtPtr>& stmts) {
        scopes_.emplace_back();
        for (const lang::StmtPtr& s : stmts) exec_stmt(*s);
        scopes_.pop_back();
    }

    void exec_stmt(const StmtNode& s) {
        tick();
        // Block ids are per-method; only the entry method's coverage is
        // tracked (callee blocks would alias the entry method's ids).
        if (call_depth_ == 0 && s.block_id >= 0 &&
            static_cast<std::size_t>(s.block_id) < result_.covered_blocks.size()) {
            result_.covered_blocks[static_cast<std::size_t>(s.block_id)] = true;
        }
        switch (s.kind) {
            case SKind::VarDecl: {
                CValue v = eval(*s.expr);
                scopes_.back().emplace(s.name, v);
                break;
            }
            case SKind::Assign: {
                if (s.index) {
                    exec_element_assign(s);
                } else {
                    CValue v = eval(*s.expr);
                    lookup(s.name, s.loc) = v;
                }
                break;
            }
            case SKind::If: {
                CValue cond = eval(*s.expr);
                record_branch(cond, s.expr->node_id, ExceptionKind::None, s.expr->loc);
                if (cond.as_bool()) {
                    exec_list(s.body);
                } else {
                    exec_list(s.else_body);
                }
                break;
            }
            case SKind::While: {
                for (;;) {
                    tick();
                    CValue cond = eval(*s.expr);
                    record_branch(cond, s.expr->node_id, ExceptionKind::None, s.expr->loc);
                    if (!cond.as_bool()) break;
                    bool exited = false;
                    try {
                        exec_list(s.body);
                    } catch (const ContinueSignal&) {
                        // fall through to the step
                    } catch (const BreakSignal&) {
                        exited = true;
                    }
                    if (exited) break;
                    // A for-loop's increment runs even after `continue`.
                    if (s.step) exec_stmt(*s.step);
                }
                break;
            }
            case SKind::Return: {
                ReturnSignal ret;
                if (s.expr) {
                    ret.value = eval(*s.expr);
                    ret.has_value = true;
                }
                throw ret;
            }
            case SKind::Assert: {
                CValue cond = eval(*s.expr);
                check(cond, s.node_id, ExceptionKind::AssertionViolation, s.loc);
                break;
            }
            case SKind::Block:
                exec_list(s.body);
                break;
            case SKind::Break:
                throw BreakSignal{};
            case SKind::Continue:
                throw ContinueSignal{};
        }
    }

    void exec_element_assign(const StmtNode& s) {
        CValue base = lookup(s.name, s.loc);
        CValue idx = eval(*s.index);
        CValue rhs = eval(*s.expr);
        HeapObject& obj = access(base, idx, s.node_id, s.loc);
        obj.cells[static_cast<std::size_t>(idx.i)] = rhs;
    }

    /// Shared null + bounds checking for reads and writes. Returns the heap
    /// object; `idx` has been pinned to its concrete value if its symbolic
    /// expression was input-dependent (index concretization).
    HeapObject& access(const CValue& base, CValue& idx, int site_id,
                       support::SourceLoc loc) {
        null_check(base, site_id, loc);
        HeapObject& obj = heap_.get_mut(base.ref);

        // Index concretization: when a collection is indexed by a symbolic,
        // non-constant expression, pin the index to the observed value so
        // that element identities stay concrete (standard concolic
        // treatment; loop counters fold to constants and are unaffected).
        if (idx.sym && idx.sym->kind != sym::Kind::IntConst) {
            CValue pin = CValue::make_bool(true, pool_.eq(idx.sym, pool_.int_const(idx.i)));
            record_branch(pin, site_id, ExceptionKind::None, loc);
            idx.sym = pool_.int_const(idx.i);
        }

        const Expr* len_sym = obj.len_sym;
        CValue lower = CValue::make_bool(
            idx.i >= 0,
            (idx.sym || len_sym) ? pool_.ge(sym_of(idx), pool_.int_const(0)) : nullptr);
        // A concrete index against a concrete length folds away entirely.
        if (lower.sym && lower.sym->kind == sym::Kind::BoolConst) lower.sym = nullptr;
        check(lower, site_id, ExceptionKind::IndexOutOfRange, loc);

        const Expr* len_expr = len_sym ? len_sym : pool_.int_const(obj.len());
        CValue upper = CValue::make_bool(idx.i < obj.len(), nullptr);
        if (idx.sym || len_sym) {
            const Expr* e = pool_.lt(sym_of(idx), len_expr);
            if (e->kind != sym::Kind::BoolConst) upper.sym = e;
        }
        check(upper, site_id, ExceptionKind::IndexOutOfRange, loc);
        return obj;
    }

    void null_check(const CValue& base, int site_id, support::SourceLoc loc) {
        PI_CHECK(base.tag == CValue::Tag::Ref, "null check on non-reference");
        const Expr* is_null_expr = base.sym ? pool_.is_null(base.sym) : nullptr;
        CValue ok = CValue::make_bool(!base.ref.is_null(), nullptr);
        if (is_null_expr && is_null_expr->kind != sym::Kind::BoolConst) {
            ok.sym = pool_.not_(is_null_expr);
        }
        check(ok, site_id, ExceptionKind::NullReference, loc);
    }

    // --- expressions ------------------------------------------------------------
    CValue eval(const ExprNode& e) {
        switch (e.kind) {
            case EKind::IntLit: return CValue::make_int(e.int_value);
            case EKind::BoolLit: return CValue::make_bool(e.bool_value);
            case EKind::NullLit:
                return CValue::make_ref(ObjRef::null(), pool_.null_const());
            case EKind::VarRef: return lookup(e.name, e.loc);
            case EKind::Unary: return eval_unary(e);
            case EKind::Binary: return eval_binary(e);
            case EKind::Index: return eval_index(e);
            case EKind::Len: return eval_len(e);
            case EKind::Call: return eval_call(e);
        }
        PI_CHECK(false, "unhandled expression kind");
        return {};
    }

    CValue eval_unary(const ExprNode& e) {
        CValue v = eval(*e.lhs);
        if (e.un == UnOp::Neg) {
            return CValue::make_int(wrap_sub(0, v.i), v.sym ? pool_.neg(v.sym) : nullptr);
        }
        return CValue::make_bool(v.i == 0, v.sym ? pool_.not_(v.sym) : nullptr);
    }

    CValue eval_binary(const ExprNode& e) {
        // Short-circuit boolean operators are branches (as in compiled IL):
        // each evaluated operand contributes its own path predicate, and the
        // operator's value is concrete on this path.
        if (e.bin == BinOp::And || e.bin == BinOp::Or) {
            CValue l = eval(*e.lhs);
            record_branch(l, e.lhs->node_id, ExceptionKind::None, e.lhs->loc);
            const bool short_circuit =
                (e.bin == BinOp::And) ? !l.as_bool() : l.as_bool();
            if (short_circuit) return CValue::make_bool(l.as_bool());
            CValue r = eval(*e.rhs);
            record_branch(r, e.rhs->node_id, ExceptionKind::None, e.rhs->loc);
            return CValue::make_bool(r.as_bool());
        }

        // Reference equality (against null only; enforced by the checker).
        if ((e.bin == BinOp::Eq || e.bin == BinOp::Ne) &&
            lang::is_reference_type(e.lhs->type)) {
            CValue l = eval(*e.lhs);
            CValue r = eval(*e.rhs);
            const CValue& refside = (e.rhs->kind == EKind::NullLit) ? l : r;
            bool value = refside.ref.is_null();
            const Expr* s = nullptr;
            if (refside.sym) {
                const Expr* isnull = pool_.is_null(refside.sym);
                if (isnull->kind != sym::Kind::BoolConst) s = isnull;
            }
            if (e.bin == BinOp::Ne) {
                value = !value;
                if (s) s = pool_.not_(s);
            }
            return CValue::make_bool(value, s);
        }

        CValue l = eval(*e.lhs);
        CValue r = eval(*e.rhs);
        const bool symbolic = l.sym || r.sym;
        auto sym2 = [&](const Expr* (sym::ExprPool::*fn)(const Expr*, const Expr*)) {
            return symbolic ? (pool_.*fn)(sym_of(l), sym_of(r)) : nullptr;
        };
        auto cmp2 = [&](sym::Kind op) {
            return symbolic ? pool_.cmp(op, sym_of(l), sym_of(r)) : nullptr;
        };
        switch (e.bin) {
            case BinOp::Add:
                return CValue::make_int(wrap_add(l.i, r.i), sym2(&sym::ExprPool::add));
            case BinOp::Sub:
                return CValue::make_int(wrap_sub(l.i, r.i), sym2(&sym::ExprPool::sub));
            case BinOp::Mul:
                return CValue::make_int(wrap_mul(l.i, r.i), sym2(&sym::ExprPool::mul));
            case BinOp::Div:
            case BinOp::Mod: {
                CValue nonzero = CValue::make_bool(r.i != 0, nullptr);
                if (r.sym) {
                    const Expr* ne0 = pool_.ne(r.sym, pool_.int_const(0));
                    if (ne0->kind != sym::Kind::BoolConst) nonzero.sym = ne0;
                }
                check(nonzero, e.node_id, ExceptionKind::DivideByZero, e.loc);
                if (e.bin == BinOp::Div) {
                    return CValue::make_int(safe_div(l.i, r.i), sym2(&sym::ExprPool::div));
                }
                return CValue::make_int(safe_mod(l.i, r.i), sym2(&sym::ExprPool::mod));
            }
            case BinOp::Eq: return CValue::make_bool(l.i == r.i, cmp2(sym::Kind::Eq));
            case BinOp::Ne: return CValue::make_bool(l.i != r.i, cmp2(sym::Kind::Ne));
            case BinOp::Lt: return CValue::make_bool(l.i < r.i, cmp2(sym::Kind::Lt));
            case BinOp::Le: return CValue::make_bool(l.i <= r.i, cmp2(sym::Kind::Le));
            case BinOp::Gt: return CValue::make_bool(l.i > r.i, cmp2(sym::Kind::Gt));
            case BinOp::Ge: return CValue::make_bool(l.i >= r.i, cmp2(sym::Kind::Ge));
            case BinOp::And: case BinOp::Or: break;  // handled above
        }
        PI_CHECK(false, "unhandled binary operator");
        return {};
    }

    CValue eval_index(const ExprNode& e) {
        CValue base = eval(*e.lhs);
        CValue idx = eval(*e.rhs);
        HeapObject& obj = access(base, idx, e.node_id, e.loc);
        return obj.cells[static_cast<std::size_t>(idx.i)];
    }

    CValue eval_len(const ExprNode& e) {
        CValue base = eval(*e.lhs);
        null_check(base, e.node_id, e.loc);
        const HeapObject& obj = heap_.get(base.ref);
        return CValue::make_int(obj.len(), obj.len_sym);
    }

    CValue eval_call(const ExprNode& e) {
        if (e.name == "iswhitespace") {
            CValue v = eval(*e.args[0]);
            return CValue::make_bool(sym::ExprPool::whitespace_code_point(v.i),
                                     v.sym ? pool_.is_whitespace(v.sym) : nullptr);
        }
        if (e.name == "newintarray" || e.name == "newstrarray") {
            CValue n = eval(*e.args[0]);
            // Pin a symbolic allocation size (the heap needs a concrete
            // length), then range-check it.
            if (n.sym && n.sym->kind != sym::Kind::IntConst) {
                CValue pin =
                    CValue::make_bool(true, pool_.eq(n.sym, pool_.int_const(n.i)));
                record_branch(pin, e.node_id, ExceptionKind::None, e.loc);
                n.sym = pool_.int_const(n.i);
            }
            CValue nonneg = CValue::make_bool(n.i >= 0, nullptr);
            check(nonneg, e.node_id, ExceptionKind::IndexOutOfRange, e.loc);
            if (n.i > limits_.max_alloc) throw ExhaustedSignal{};
            HeapObject obj;
            obj.kind = (e.name == "newintarray") ? ObjKind::IntArr : ObjKind::StrArr;
            if (e.name == "newintarray") {
                obj.cells.assign(static_cast<std::size_t>(n.i), CValue::make_int(0));
            } else {
                obj.cells.assign(static_cast<std::size_t>(n.i),
                                 CValue::make_ref(ObjRef::null(), nullptr));
            }
            return CValue::make_ref(heap_.alloc(std::move(obj)), nullptr);
        }
        // User-defined method call: bind evaluated arguments as the callee's
        // parameters, execute its body in a fresh frame, and unwind on
        // return. Branch predicates and assertion checks recorded inside
        // the callee accumulate into the same path condition (Section III:
        // "collected from the executed branch conditions in m and its
        // (direct and indirect) callee methods").
        PI_CHECK(program_ != nullptr,
                 "call to '" + e.name + "' without a program context");
        const lang::Method* callee = program_->find(e.name);
        PI_CHECK(callee != nullptr,
                 "unknown method '" + e.name + "' survived type checking");
        if (call_depth_ >= limits_.max_call_depth) throw ExhaustedSignal{};

        std::vector<CValue> args;
        args.reserve(e.args.size());
        for (const lang::ExprPtr& a : e.args) args.push_back(eval(*a));

        std::vector<std::unordered_map<std::string, CValue>> saved_scopes =
            std::move(scopes_);
        scopes_.clear();
        scopes_.emplace_back();
        for (std::size_t i = 0; i < args.size(); ++i) {
            scopes_.back().emplace(callee->params[i].name, args[i]);
        }
        ++call_depth_;

        CValue result = default_value_of(callee->ret);
        try {
            exec_list(callee->body);
        } catch (const ReturnSignal& ret) {
            if (ret.has_value) result = ret.value;
        } catch (...) {
            --call_depth_;
            scopes_ = std::move(saved_scopes);
            throw;
        }
        --call_depth_;
        scopes_ = std::move(saved_scopes);
        return result;
    }

    /// Value a non-void method yields when control falls off its end
    /// without a `return` (MiniLang has no definite-return analysis).
    CValue default_value_of(lang::Type t) {
        switch (t) {
            case lang::Type::Int: return CValue::make_int(0);
            case lang::Type::Bool: return CValue::make_bool(false);
            case lang::Type::Str:
            case lang::Type::IntArr:
            case lang::Type::StrArr:
                return CValue::make_ref(ObjRef::null(), pool_.null_const());
            case lang::Type::Void: return CValue::make_int(0);
        }
        return CValue::make_int(0);
    }

    sym::ExprPool& pool_;
    const lang::Method& method_;
    const ExecLimits& limits_;
    const lang::Program* program_;
    int call_depth_ = 0;
    Heap heap_;
    std::vector<std::unordered_map<std::string, CValue>> scopes_;
    RunResult result_;
};

}  // namespace

ConcolicInterpreter::ConcolicInterpreter(sym::ExprPool& pool, const lang::Method& method,
                                         ExecLimits limits, const lang::Program* program)
    : pool_(pool), method_(method), limits_(limits), program_(program) {}

RunResult ConcolicInterpreter::run(const Input& input) const {
    Machine machine(pool_, method_, limits_, input, program_);
    return machine.run();
}

}  // namespace preinfer::exec
