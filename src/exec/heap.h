#pragma once

#include <utility>
#include <vector>

#include "src/exec/value.h"
#include "src/support/diagnostics.h"

namespace preinfer::exec {

enum class ObjKind : std::uint8_t { Str, IntArr, StrArr };

/// A heap object: a string (character cells) or an array. `symref` is the
/// symbolic identity for objects materialized from method inputs
/// (Param / Select chains); program-created objects have symref == nullptr.
/// `len_sym` is the symbolic length (Len(symref) for inputs), nullptr when
/// the length is a plain concrete constant.
struct HeapObject {
    ObjKind kind = ObjKind::IntArr;
    const sym::Expr* symref = nullptr;
    const sym::Expr* len_sym = nullptr;
    std::vector<CValue> cells;

    [[nodiscard]] std::int64_t len() const { return static_cast<std::int64_t>(cells.size()); }
};

/// Grow-only object store for one method execution.
class Heap {
public:
    ObjRef alloc(HeapObject obj) {
        objects_.push_back(std::move(obj));
        return ObjRef{static_cast<int>(objects_.size()) - 1};
    }

    [[nodiscard]] const HeapObject& get(ObjRef r) const {
        PI_CHECK(!r.is_null() && static_cast<std::size_t>(r.id) < objects_.size(),
                 "dangling or null heap reference");
        return objects_[static_cast<std::size_t>(r.id)];
    }

    [[nodiscard]] HeapObject& get_mut(ObjRef r) {
        return const_cast<HeapObject&>(std::as_const(*this).get(r));
    }

    [[nodiscard]] std::size_t size() const { return objects_.size(); }

private:
    std::vector<HeapObject> objects_;
};

}  // namespace preinfer::exec
