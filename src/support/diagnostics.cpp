#include "src/support/diagnostics.h"

namespace preinfer::support {

void internal_fail(const char* file, int line, const std::string& message) {
    throw InternalError(std::string(file) + ":" + std::to_string(line) +
                        ": internal invariant violated: " + message);
}

}  // namespace preinfer::support
