#include "src/support/thread_pool.h"

#include <algorithm>
#include <exception>
#include <utility>

namespace preinfer::support {

ThreadPool::ThreadPool(int threads) {
    const int n = std::max(1, threads);
    workers_.reserve(static_cast<std::size_t>(n));
    for (int i = 0; i < n; ++i) {
        workers_.emplace_back([this] { worker_loop(); });
    }
}

ThreadPool::~ThreadPool() {
    {
        std::lock_guard<std::mutex> lock(mu_);
        stopping_ = true;
    }
    work_available_.notify_all();
    for (std::thread& w : workers_) w.join();
}

void ThreadPool::submit(std::function<void()> task) {
    {
        std::lock_guard<std::mutex> lock(mu_);
        queue_.push_back(std::move(task));
    }
    work_available_.notify_one();
}

void ThreadPool::wait_idle() {
    std::unique_lock<std::mutex> lock(mu_);
    idle_.wait(lock, [this] { return queue_.empty() && active_ == 0; });
}

void ThreadPool::worker_loop() {
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mu_);
            work_available_.wait(lock,
                                 [this] { return stopping_ || !queue_.empty(); });
            if (queue_.empty()) return;  // stopping_ and drained
            task = std::move(queue_.front());
            queue_.pop_front();
            ++active_;
        }
        task();
        {
            std::lock_guard<std::mutex> lock(mu_);
            --active_;
            if (queue_.empty() && active_ == 0) idle_.notify_all();
        }
    }
}

int ThreadPool::default_jobs() {
    const unsigned hw = std::thread::hardware_concurrency();
    return hw == 0 ? 1 : static_cast<int>(hw);
}

void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn) {
    if (n == 0) return;
    if (jobs <= 1 || n == 1) {
        for (std::size_t i = 0; i < n; ++i) fn(i);
        return;
    }
    ThreadPool pool(static_cast<int>(
        std::min<std::size_t>(static_cast<std::size_t>(jobs), n)));
    std::vector<std::exception_ptr> errors(n);
    for (std::size_t i = 0; i < n; ++i) {
        pool.submit([&fn, &errors, i] {
            try {
                fn(i);
            } catch (...) {
                errors[i] = std::current_exception();
            }
        });
    }
    pool.wait_idle();
    for (const std::exception_ptr& e : errors) {
        if (e) std::rethrow_exception(e);
    }
}

}  // namespace preinfer::support
