#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace preinfer::support {

namespace metrics_detail {
/// Global on/off switch, read on every hot-path update. A relaxed atomic
/// load compiles to a plain load; instrumented code checks it before doing
/// any work, so the disabled cost is one predictable branch.
inline std::atomic<bool> g_metrics_enabled{false};
}  // namespace metrics_detail

[[nodiscard]] inline bool metrics_enabled() {
    return metrics_detail::g_metrics_enabled.load(std::memory_order_relaxed);
}

/// A monotonically increasing named count. Thread-safe; updates are relaxed
/// atomics (aggregates have no ordering requirement).
class MetricCounter {
public:
    void add(std::int64_t delta = 1) {
        value_.fetch_add(delta, std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t value() const {
        return value_.load(std::memory_order_relaxed);
    }
    void reset() { value_.store(0, std::memory_order_relaxed); }

private:
    std::atomic<std::int64_t> value_{0};
};

/// A named distribution of non-negative integer samples (microseconds,
/// sizes). Tracks count / sum / min / max exactly plus power-of-two buckets
/// for percentile estimates. Thread-safe, lock-free.
class MetricHistogram {
public:
    static constexpr int kBuckets = 32;  ///< bucket b holds samples with bit_width b

    void observe(std::int64_t sample);

    [[nodiscard]] std::int64_t count() const {
        return count_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t sum() const {
        return sum_.load(std::memory_order_relaxed);
    }
    [[nodiscard]] std::int64_t min() const;  ///< 0 when empty
    [[nodiscard]] std::int64_t max() const;  ///< 0 when empty
    [[nodiscard]] double mean() const;

    /// Upper bound of the bucket containing the q-th quantile (q in [0,1]);
    /// 0 when empty. Power-of-two resolution — good enough for "is p99 a
    /// millisecond or a second" summaries.
    [[nodiscard]] std::int64_t quantile_bound(double q) const;

    void reset();

private:
    std::atomic<std::int64_t> count_{0};
    std::atomic<std::int64_t> sum_{0};
    std::atomic<std::int64_t> min_{INT64_MAX};
    std::atomic<std::int64_t> max_{INT64_MIN};
    std::atomic<std::int64_t> buckets_[kBuckets]{};
};

/// Process-wide registry of named counters and histograms. Lookup interns
/// the name under a mutex and returns a stable reference, so hot paths
/// should look up once (function-local static) and then update lock-free:
///
///   static auto& queries = MetricsRegistry::global().counter("solver.queries");
///   if (support::metrics_enabled()) queries.add();
///
/// The registry itself is always available; `set_enabled` only flips the
/// flag instrumented code consults. Metric names are dotted paths
/// ("layer.metric", catalogued in docs/OBSERVABILITY.md).
class MetricsRegistry {
public:
    static MetricsRegistry& global();

    void set_enabled(bool enabled) {
        metrics_detail::g_metrics_enabled.store(enabled, std::memory_order_relaxed);
    }

    [[nodiscard]] MetricCounter& counter(std::string_view name);
    [[nodiscard]] MetricHistogram& histogram(std::string_view name);

    /// Zeroes every registered metric (entries stay registered).
    void reset();

    struct CounterRow {
        std::string name;
        std::int64_t value = 0;
    };
    struct HistogramRow {
        std::string name;
        std::int64_t count = 0;
        std::int64_t sum = 0;
        std::int64_t min = 0;
        std::int64_t max = 0;
        double mean = 0.0;
        std::int64_t p50 = 0;
        std::int64_t p99 = 0;
    };

    /// Point-in-time copies, sorted by name (deterministic output order).
    [[nodiscard]] std::vector<CounterRow> counters() const;
    [[nodiscard]] std::vector<HistogramRow> histograms() const;

    /// The human-readable `[metrics]` block the CLI's --metrics flag and the
    /// bench binaries print: one line per non-zero metric, sorted by name.
    [[nodiscard]] std::string summary() const;

private:
    mutable std::mutex mu_;
    std::map<std::string, MetricCounter, std::less<>> counters_;
    std::map<std::string, MetricHistogram, std::less<>> histograms_;
};

/// RAII wall-clock timer: on destruction, records the elapsed microseconds
/// into the histogram — but only when metrics were enabled at construction
/// (the disabled path never reads the clock).
class ScopedTimer {
public:
    explicit ScopedTimer(MetricHistogram& histogram)
        : histogram_(metrics_enabled() ? &histogram : nullptr) {
        if (histogram_ != nullptr) start_ = std::chrono::steady_clock::now();
    }
    ~ScopedTimer() {
        if (histogram_ == nullptr) return;
        const auto elapsed = std::chrono::steady_clock::now() - start_;
        histogram_->observe(
            std::chrono::duration_cast<std::chrono::microseconds>(elapsed).count());
    }

    ScopedTimer(const ScopedTimer&) = delete;
    ScopedTimer& operator=(const ScopedTimer&) = delete;

private:
    MetricHistogram* histogram_;
    std::chrono::steady_clock::time_point start_{};
};

}  // namespace preinfer::support
