#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace preinfer::support {

/// Every structured-trace event kind the pipeline can emit. The numeric
/// values index kTraceEventNames; the names are the `"event"` field of the
/// JSONL records and the authoritative schema vocabulary documented in
/// docs/OBSERVABILITY.md (the two are kept in sync by tools/docs_check,
/// wired into ctest as `preinfer_docs_check`).
enum class TraceEventKind : std::uint8_t {
    MethodBegin,             ///< one pipeline unit (subject, method) starts
    MethodEnd,               ///< ... and ends, with suite-level totals
    PhaseBegin,              ///< explore / validation / infer phase boundary
    AclBegin,                ///< inference for one ACL starts
    PathRetained,            ///< explorer kept a new test in the suite
    PathDuplicate,           ///< explorer discarded a duplicate input/path
    SolverQuery,             ///< one memoized-or-solved conjunction query
    PredicateKept,           ///< Algorithm 1 kept a predicate (Def. 5/6)
    PredicatePruned,         ///< Algorithm 1 pruned a predicate
    PredicateDuplicate,      ///< later occurrence of an already-decided branch
    TemplateApplied,         ///< a generalization template fired
    TemplateRejected,        ///< a candidate match lost (score or overlap)
    PruningFallback,         ///< disjunct restored pruned predicates
    GeneralizationFallback,  ///< disjunct reverted to its pruned form
    DisjunctEmitted,         ///< one disjunct of alpha, as inferred
    DisjunctDuplicate,       ///< disjunct dropped: duplicates an earlier one
};

/// JSONL `"event"` names, indexed by TraceEventKind. tools/docs_check
/// extracts the quoted strings between the braces below and diffs them
/// against the event catalog in docs/OBSERVABILITY.md — keep the list flat
/// and literal.
inline constexpr const char* kTraceEventNames[] = {
    "method_begin",
    "method_end",
    "phase_begin",
    "acl_begin",
    "path_retained",
    "path_duplicate",
    "solver_query",
    "predicate_kept",
    "predicate_pruned",
    "predicate_duplicate",
    "template_applied",
    "template_rejected",
    "pruning_fallback",
    "generalization_fallback",
    "disjunct_emitted",
    "disjunct_duplicate",
};

inline constexpr std::size_t kTraceEventCount =
    sizeof(kTraceEventNames) / sizeof(kTraceEventNames[0]);

[[nodiscard]] constexpr const char* trace_event_name(TraceEventKind kind) {
    return kTraceEventNames[static_cast<std::size_t>(kind)];
}

/// Knobs for one trace collection.
struct TraceOptions {
    bool enabled = false;
    /// Attach wall-clock fields (`micros` on solver_query). Off by default:
    /// timing fields are the only nondeterministic record content, and the
    /// byte-identity guarantee across --jobs values (and across runs) only
    /// holds without them. Aggregate timing belongs to the metrics registry.
    bool timings = false;
};

/// Serialized JSONL lines of one pipeline unit. One buffer per
/// (subject, method) unit: the harness merges buffers in input order after
/// the parallel fan-out, which is what makes whole-run traces byte-identical
/// for every --jobs value.
class TraceBuffer {
public:
    void append(std::string_view bytes) { data_.append(bytes); }
    [[nodiscard]] const std::string& data() const { return data_; }
    [[nodiscard]] bool empty() const { return data_.empty(); }
    void clear() { data_.clear(); }

private:
    std::string data_;
};

namespace trace_detail {

/// Thread-local emission slot. A null buffer means tracing is off for this
/// thread, so the disabled fast path is a single thread-local load compare
/// (see trace_active()) and instrumented code never evaluates its event
/// arguments. Parallel pipelines get per-worker isolation for free: each
/// unit installs its own buffer on the worker running it.
struct TraceTls {
    TraceBuffer* buffer = nullptr;
    bool timings = false;
    const std::vector<std::string>* param_names = nullptr;
};

inline thread_local TraceTls g_trace_tls;

}  // namespace trace_detail

/// True iff a TraceScope is installed on this thread. Instrumentation must
/// check this before building event payloads (strings in particular).
[[nodiscard]] inline bool trace_active() {
    return trace_detail::g_trace_tls.buffer != nullptr;
}

/// True iff the active scope asked for wall-clock fields.
[[nodiscard]] inline bool trace_timings() {
    return trace_detail::g_trace_tls.timings;
}

/// The buffer events on this thread currently append to (nullptr when
/// tracing is off). Orchestration code uses this to splice per-worker
/// buffers into an enclosing scope's buffer in deterministic order.
[[nodiscard]] inline TraceBuffer* active_trace_buffer() {
    return trace_detail::g_trace_tls.buffer;
}

/// Parameter names of the method currently being traced (empty span when
/// none are installed); used to print predicate expressions with their
/// source names instead of positional p0/p1/...
[[nodiscard]] inline std::span<const std::string> trace_param_names() {
    const auto* names = trace_detail::g_trace_tls.param_names;
    return names ? std::span<const std::string>(*names)
                 : std::span<const std::string>();
}

/// RAII activation of tracing on the current thread: events emitted between
/// construction and destruction are appended to `buffer`. Scopes nest; the
/// previous slot is restored on destruction.
class TraceScope {
public:
    explicit TraceScope(TraceBuffer& buffer, bool timings = false)
        : prev_(trace_detail::g_trace_tls) {
        trace_detail::g_trace_tls.buffer = &buffer;
        trace_detail::g_trace_tls.timings = timings;
    }
    ~TraceScope() { trace_detail::g_trace_tls = prev_; }

    TraceScope(const TraceScope&) = delete;
    TraceScope& operator=(const TraceScope&) = delete;

private:
    trace_detail::TraceTls prev_;
};

/// RAII installation of the method parameter names events should print
/// predicates with. Install once per pipeline unit, after parsing.
class TraceNameScope {
public:
    explicit TraceNameScope(std::vector<std::string> names)
        : names_(std::move(names)),
          prev_(trace_detail::g_trace_tls.param_names) {
        trace_detail::g_trace_tls.param_names = &names_;
    }
    ~TraceNameScope() { trace_detail::g_trace_tls.param_names = prev_; }

    TraceNameScope(const TraceNameScope&) = delete;
    TraceNameScope& operator=(const TraceNameScope&) = delete;

private:
    std::vector<std::string> names_;
    const std::vector<std::string>* prev_;
};

/// Builder for one JSONL record. Construct only when trace_active(): the
/// constructor unconditionally writes into the thread-local buffer.
///
///   if (support::trace_active()) {
///       support::TraceEvent(support::TraceEventKind::PathRetained)
///           .field("test", id)
///           .field("preds", n)
///           .emit();
///   }
///
/// Fields appear in insertion order after the leading `"event"` key; values
/// are strings (JSON-escaped), integers, or booleans. emit() terminates the
/// record; a destructed-but-unemitted event is completed automatically so
/// the buffer never holds a torn line.
class TraceEvent {
public:
    explicit TraceEvent(TraceEventKind kind);
    ~TraceEvent();

    TraceEvent(const TraceEvent&) = delete;
    TraceEvent& operator=(const TraceEvent&) = delete;
    /// Movable so helpers can prefill shared context fields and return the
    /// builder; the moved-from event is defused (it will not emit).
    TraceEvent(TraceEvent&& other) noexcept
        : line_(std::move(other.line_)), emitted_(other.emitted_) {
        other.emitted_ = true;
    }

    TraceEvent& field(std::string_view key, std::string_view value);
    TraceEvent& field(std::string_view key, const char* value) {
        return field(key, std::string_view(value));
    }
    TraceEvent& field(std::string_view key, std::int64_t value);
    TraceEvent& field(std::string_view key, int value) {
        return field(key, static_cast<std::int64_t>(value));
    }
    TraceEvent& field(std::string_view key, std::size_t value) {
        return field(key, static_cast<std::int64_t>(value));
    }
    TraceEvent& field(std::string_view key, bool value);

    void emit();

private:
    std::string line_;
    bool emitted_ = false;
};

/// Appends `s` to `out` with JSON string escaping (quotes, backslashes,
/// control characters). Exposed for the trace reader's round-trip tests.
void json_escape_to(std::string& out, std::string_view s);

}  // namespace preinfer::support
