#include "src/support/metrics.h"

#include <algorithm>
#include <bit>
#include <cstdio>

namespace preinfer::support {

namespace {

/// Lock-free monotone update: keep the extremum of `current` and `sample`.
template <typename Cmp>
void update_extremum(std::atomic<std::int64_t>& slot, std::int64_t sample, Cmp better) {
    std::int64_t current = slot.load(std::memory_order_relaxed);
    while (better(sample, current) &&
           !slot.compare_exchange_weak(current, sample, std::memory_order_relaxed)) {
    }
}

int bucket_of(std::int64_t sample) {
    if (sample <= 0) return 0;
    const int width = std::bit_width(static_cast<std::uint64_t>(sample));
    return std::min(width, MetricHistogram::kBuckets - 1);
}

}  // namespace

void MetricHistogram::observe(std::int64_t sample) {
    count_.fetch_add(1, std::memory_order_relaxed);
    sum_.fetch_add(sample, std::memory_order_relaxed);
    update_extremum(min_, sample, std::less<>());
    update_extremum(max_, sample, std::greater<>());
    buckets_[bucket_of(sample)].fetch_add(1, std::memory_order_relaxed);
}

std::int64_t MetricHistogram::min() const {
    const std::int64_t v = min_.load(std::memory_order_relaxed);
    return v == INT64_MAX ? 0 : v;
}

std::int64_t MetricHistogram::max() const {
    const std::int64_t v = max_.load(std::memory_order_relaxed);
    return v == INT64_MIN ? 0 : v;
}

double MetricHistogram::mean() const {
    const std::int64_t n = count();
    return n == 0 ? 0.0 : static_cast<double>(sum()) / static_cast<double>(n);
}

std::int64_t MetricHistogram::quantile_bound(double q) const {
    const std::int64_t n = count();
    if (n == 0) return 0;
    const auto rank = static_cast<std::int64_t>(q * static_cast<double>(n - 1));
    std::int64_t seen = 0;
    for (int b = 0; b < kBuckets; ++b) {
        seen += buckets_[b].load(std::memory_order_relaxed);
        if (seen > rank) {
            // Bucket b holds samples with bit_width b: upper bound 2^b - 1.
            return b == 0 ? 0 : (std::int64_t{1} << b) - 1;
        }
    }
    return max();
}

void MetricHistogram::reset() {
    count_.store(0, std::memory_order_relaxed);
    sum_.store(0, std::memory_order_relaxed);
    min_.store(INT64_MAX, std::memory_order_relaxed);
    max_.store(INT64_MIN, std::memory_order_relaxed);
    for (auto& b : buckets_) b.store(0, std::memory_order_relaxed);
}

MetricsRegistry& MetricsRegistry::global() {
    static MetricsRegistry registry;
    return registry;
}

MetricCounter& MetricsRegistry::counter(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = counters_.find(name);
    if (it != counters_.end()) return it->second;
    return counters_[std::string(name)];
}

MetricHistogram& MetricsRegistry::histogram(std::string_view name) {
    const std::lock_guard<std::mutex> lock(mu_);
    const auto it = histograms_.find(name);
    if (it != histograms_.end()) return it->second;
    return histograms_[std::string(name)];
}

void MetricsRegistry::reset() {
    const std::lock_guard<std::mutex> lock(mu_);
    for (auto& [name, c] : counters_) c.reset();
    for (auto& [name, h] : histograms_) h.reset();
}

std::vector<MetricsRegistry::CounterRow> MetricsRegistry::counters() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<CounterRow> rows;
    rows.reserve(counters_.size());
    for (const auto& [name, c] : counters_) rows.push_back({name, c.value()});
    return rows;  // std::map iteration order is already sorted by name
}

std::vector<MetricsRegistry::HistogramRow> MetricsRegistry::histograms() const {
    const std::lock_guard<std::mutex> lock(mu_);
    std::vector<HistogramRow> rows;
    rows.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
        rows.push_back({name, h.count(), h.sum(), h.min(), h.max(), h.mean(),
                        h.quantile_bound(0.5), h.quantile_bound(0.99)});
    }
    return rows;
}

std::string MetricsRegistry::summary() const {
    std::string out = "[metrics]\n";
    for (const CounterRow& row : counters()) {
        if (row.value == 0) continue;
        char line[160];
        std::snprintf(line, sizeof(line), "  %-38s %lld\n", row.name.c_str(),
                      static_cast<long long>(row.value));
        out += line;
    }
    for (const HistogramRow& row : histograms()) {
        if (row.count == 0) continue;
        char line[240];
        std::snprintf(line, sizeof(line),
                      "  %-38s count=%lld mean=%.1f min=%lld max=%lld "
                      "p50<=%lld p99<=%lld\n",
                      row.name.c_str(), static_cast<long long>(row.count), row.mean,
                      static_cast<long long>(row.min), static_cast<long long>(row.max),
                      static_cast<long long>(row.p50), static_cast<long long>(row.p99));
        out += line;
    }
    return out;
}

}  // namespace preinfer::support
