#include "src/support/source_location.h"

namespace preinfer::support {

std::string SourceLoc::to_string() const {
    if (!known()) return "<unknown>";
    return std::to_string(line) + ":" + std::to_string(col);
}

}  // namespace preinfer::support
