#include "src/support/trace_reader.h"

#include <algorithm>
#include <cstdint>
#include <istream>

#include "src/support/trace.h"

namespace preinfer::support {

namespace {

void set_error(std::string* error, std::string message) {
    if (error != nullptr) *error = std::move(message);
}

/// Cursor over one line; the grammar is the flat-object subset TraceEvent
/// writes: {"key":"string", "key":-123, "key":true|false}.
struct Cursor {
    std::string_view s;
    std::size_t pos = 0;

    [[nodiscard]] bool done() const { return pos >= s.size(); }
    [[nodiscard]] char peek() const { return s[pos]; }
    bool eat(char c) {
        if (done() || s[pos] != c) return false;
        ++pos;
        return true;
    }
};

bool parse_string(Cursor& c, std::string& out) {
    if (!c.eat('"')) return false;
    while (!c.done()) {
        const char ch = c.s[c.pos++];
        if (ch == '"') return true;
        if (ch != '\\') {
            out += ch;
            continue;
        }
        if (c.done()) return false;
        const char esc = c.s[c.pos++];
        switch (esc) {
            case '"': out += '"'; break;
            case '\\': out += '\\'; break;
            case '/': out += '/'; break;
            case 'n': out += '\n'; break;
            case 'r': out += '\r'; break;
            case 't': out += '\t'; break;
            case 'u': {
                if (c.pos + 4 > c.s.size()) return false;
                unsigned code = 0;
                for (int i = 0; i < 4; ++i) {
                    const char h = c.s[c.pos++];
                    code <<= 4;
                    if (h >= '0' && h <= '9') {
                        code |= static_cast<unsigned>(h - '0');
                    } else if (h >= 'a' && h <= 'f') {
                        code |= static_cast<unsigned>(h - 'a' + 10);
                    } else if (h >= 'A' && h <= 'F') {
                        code |= static_cast<unsigned>(h - 'A' + 10);
                    } else {
                        return false;
                    }
                }
                // The emitter only produces \u00XX control escapes.
                out += static_cast<char>(code & 0xff);
                break;
            }
            default: return false;
        }
    }
    return false;
}

/// Number / true / false literals are kept verbatim.
bool parse_literal(Cursor& c, std::string& out) {
    const std::size_t start = c.pos;
    while (!c.done()) {
        const char ch = c.peek();
        if (ch == ',' || ch == '}') break;
        ++c.pos;
    }
    if (c.pos == start) return false;
    out.assign(c.s.substr(start, c.pos - start));
    if (out == "true" || out == "false") return true;
    char* end = nullptr;
    const std::string copy = out;
    (void)std::strtoll(copy.c_str(), &end, 10);
    return end != nullptr && *end == '\0';
}

}  // namespace

const std::string* TraceRecord::find(std::string_view key) const {
    for (const auto& [k, v] : fields) {
        if (k == key) return &v;
    }
    return nullptr;
}

std::int64_t TraceRecord::find_int(std::string_view key, std::int64_t fallback) const {
    const std::string* v = find(key);
    if (v == nullptr) return fallback;
    char* end = nullptr;
    const long long parsed = std::strtoll(v->c_str(), &end, 10);
    if (end == nullptr || *end != '\0') return fallback;
    return parsed;
}

std::optional<std::vector<std::pair<std::string, std::string>>> parse_flat_object(
    std::string_view line, std::string* error) {
    Cursor c{line};
    if (!c.eat('{')) {
        set_error(error, "record does not start with '{'");
        return std::nullopt;
    }
    std::vector<std::pair<std::string, std::string>> fields;
    bool first = true;
    while (true) {
        if (c.eat('}')) break;
        if (!first && !c.eat(',')) {
            set_error(error, "expected ',' or '}' between fields");
            return std::nullopt;
        }
        std::string key;
        if (!parse_string(c, key)) {
            set_error(error, "malformed field key");
            return std::nullopt;
        }
        if (!c.eat(':')) {
            set_error(error, "expected ':' after key \"" + key + "\"");
            return std::nullopt;
        }
        std::string value;
        if (!c.done() && c.peek() == '"') {
            if (!parse_string(c, value)) {
                set_error(error, "malformed string value for \"" + key + "\"");
                return std::nullopt;
            }
        } else if (!parse_literal(c, value)) {
            set_error(error, "malformed value for \"" + key + "\"");
            return std::nullopt;
        }
        fields.emplace_back(std::move(key), std::move(value));
        first = false;
    }
    if (c.pos != line.size()) {
        set_error(error, "trailing bytes after record");
        return std::nullopt;
    }
    return fields;
}

std::optional<TraceRecord> parse_trace_line(std::string_view line, std::string* error) {
    auto fields = parse_flat_object(line, error);
    if (!fields) return std::nullopt;
    if (fields->empty()) {
        set_error(error, "empty record");
        return std::nullopt;
    }
    if (fields->front().first != "event") {
        set_error(error,
                  "first field must be \"event\", got \"" + fields->front().first + "\"");
        return std::nullopt;
    }
    TraceRecord record;
    record.event = std::move(fields->front().second);
    record.fields.assign(std::make_move_iterator(fields->begin() + 1),
                         std::make_move_iterator(fields->end()));
    return record;
}

std::vector<std::string_view> required_trace_fields(std::string_view event) {
    if (event == "method_begin") return {"method"};
    if (event == "method_end") return {"method", "tests", "acls"};
    if (event == "phase_begin") return {"phase"};
    if (event == "acl_begin") return {"acl_kind", "acl_node", "failing", "passing"};
    if (event == "path_retained") return {"test", "preds", "failing"};
    if (event == "path_duplicate") return {"reason"};
    if (event == "solver_query") return {"conjuncts", "status", "cache"};
    if (event == "predicate_kept") {
        return {"acl_kind", "acl_node", "index", "site", "pred", "justification"};
    }
    if (event == "predicate_pruned") {
        return {"acl_kind", "acl_node", "index", "site", "pred", "justification"};
    }
    if (event == "predicate_duplicate") {
        return {"acl_kind", "acl_node", "index", "site", "pred"};
    }
    if (event == "template_applied") return {"template", "score", "consumed"};
    if (event == "template_rejected") return {"template", "reason"};
    if (event == "pruning_fallback") return {"disjunct", "repair", "restored"};
    if (event == "generalization_fallback") return {"disjunct"};
    if (event == "disjunct_emitted") return {"disjunct", "pred"};
    if (event == "disjunct_duplicate") return {"disjunct", "duplicate_of"};
    return {};
}

long validate_trace(std::istream& in, std::string* error) {
    long records = 0;
    long line_no = 0;
    std::string line;
    while (std::getline(in, line)) {
        ++line_no;
        if (line.empty()) continue;
        std::string parse_error;
        const std::optional<TraceRecord> record = parse_trace_line(line, &parse_error);
        const auto fail = [&](const std::string& why) {
            set_error(error, "line " + std::to_string(line_no) + ": " + why);
            return -1;
        };
        if (!record) return fail(parse_error);
        const bool known = std::any_of(
            std::begin(kTraceEventNames), std::end(kTraceEventNames),
            [&](const char* name) { return record->event == name; });
        if (!known) return fail("unknown event \"" + record->event + "\"");
        for (const std::string_view field : required_trace_fields(record->event)) {
            if (record->find(field) == nullptr) {
                return fail("event \"" + record->event + "\" missing field \"" +
                            std::string(field) + "\"");
            }
        }
        ++records;
    }
    return records;
}

}  // namespace preinfer::support
