#pragma once

#include <stdexcept>
#include <string>

#include "src/support/source_location.h"

namespace preinfer::support {

/// Error in MiniLang source handed to the frontend (lexer/parser/checker).
class FrontendError : public std::runtime_error {
public:
    FrontendError(std::string message, SourceLoc loc)
        : std::runtime_error(loc.to_string() + ": " + message), loc_(loc) {}

    [[nodiscard]] SourceLoc loc() const { return loc_; }

private:
    SourceLoc loc_;
};

/// Violation of an internal invariant of the library itself; indicates a bug
/// in this codebase, never in user input.
class InternalError : public std::logic_error {
public:
    explicit InternalError(const std::string& message) : std::logic_error(message) {}
};

[[noreturn]] void internal_fail(const char* file, int line, const std::string& message);

}  // namespace preinfer::support

/// Invariant check used throughout the library. Unlike assert(), it is active
/// in all build types: silently corrupt analysis results are worse than a
/// crash in this domain.
#define PI_CHECK(cond, msg)                                               \
    do {                                                                  \
        if (!(cond)) ::preinfer::support::internal_fail(__FILE__, __LINE__, (msg)); \
    } while (false)
