#include "src/support/trace.h"

namespace preinfer::support {

void json_escape_to(std::string& out, std::string_view s) {
    for (const char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\r': out += "\\r"; break;
            case '\t': out += "\\t"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    static constexpr char kHex[] = "0123456789abcdef";
                    out += "\\u00";
                    out += kHex[(c >> 4) & 0xf];
                    out += kHex[c & 0xf];
                } else {
                    out += c;
                }
        }
    }
}

TraceEvent::TraceEvent(TraceEventKind kind) {
    line_.reserve(96);
    line_ += "{\"event\":\"";
    line_ += trace_event_name(kind);
    line_ += '"';
}

TraceEvent::~TraceEvent() {
    if (!emitted_) emit();
}

TraceEvent& TraceEvent::field(std::string_view key, std::string_view value) {
    line_ += ",\"";
    json_escape_to(line_, key);
    line_ += "\":\"";
    json_escape_to(line_, value);
    line_ += '"';
    return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, std::int64_t value) {
    line_ += ",\"";
    json_escape_to(line_, key);
    line_ += "\":";
    line_ += std::to_string(value);
    return *this;
}

TraceEvent& TraceEvent::field(std::string_view key, bool value) {
    line_ += ",\"";
    json_escape_to(line_, key);
    line_ += "\":";
    line_ += value ? "true" : "false";
    return *this;
}

void TraceEvent::emit() {
    if (emitted_) return;
    emitted_ = true;
    line_ += "}\n";
    if (TraceBuffer* buffer = trace_detail::g_trace_tls.buffer) {
        buffer->append(line_);
    }
}

}  // namespace preinfer::support
