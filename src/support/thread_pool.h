#pragma once

#include <condition_variable>
#include <cstddef>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

// Clang's -Wthread-safety annotations; no-ops elsewhere. The standard
// library's mutex types are not annotated as capabilities under libstdc++,
// so annotations stay opt-in: define PREINFER_THREAD_SAFETY_ANALYSIS when
// building with an annotated standard library to turn the analysis on.
#if defined(__clang__) && defined(PREINFER_THREAD_SAFETY_ANALYSIS)
#define PI_GUARDED_BY(x) __attribute__((guarded_by(x)))
#define PI_REQUIRES(x) __attribute__((requires_capability(x)))
#else
#define PI_GUARDED_BY(x)
#define PI_REQUIRES(x)
#endif

namespace preinfer::support {

/// A fixed-size pool of std::thread workers draining a FIFO task queue.
/// Tasks are plain closures; the pool makes no ordering promise beyond FIFO
/// dispatch, so callers that need deterministic output must write results
/// into per-task slots and merge in submission order (see parallel_for).
///
/// Tasks must not throw — wrap bodies that can fail and stash the
/// std::exception_ptr; parallel_for does exactly that.
class ThreadPool {
public:
    /// Spawns max(1, threads) workers.
    explicit ThreadPool(int threads);
    /// Drains the queue, then joins all workers.
    ~ThreadPool();

    ThreadPool(const ThreadPool&) = delete;
    ThreadPool& operator=(const ThreadPool&) = delete;

    /// Enqueues a task for execution by some worker.
    void submit(std::function<void()> task);

    /// Blocks until the queue is empty and no task is running.
    void wait_idle();

    [[nodiscard]] int size() const { return static_cast<int>(workers_.size()); }

    /// Default worker count: hardware_concurrency(), clamped to >= 1 (the
    /// function may return 0 on exotic platforms).
    [[nodiscard]] static int default_jobs();

private:
    void worker_loop();

    std::mutex mu_;
    std::condition_variable work_available_;
    std::condition_variable idle_;
    std::deque<std::function<void()>> queue_ PI_GUARDED_BY(mu_);
    int active_ PI_GUARDED_BY(mu_) = 0;
    bool stopping_ PI_GUARDED_BY(mu_) = false;
    std::vector<std::thread> workers_;
};

/// Runs fn(0), ..., fn(n-1) across up to `jobs` pool workers and blocks
/// until all calls finished. jobs <= 1 (or n <= 1) runs inline on the
/// calling thread, making sequential and parallel execution byte-identical
/// for callers that only write per-index state. fn must be safe to invoke
/// concurrently on distinct indices. If any call throws, the first (lowest
/// index) exception is rethrown on the calling thread after all tasks
/// finished.
void parallel_for(int jobs, std::size_t n,
                  const std::function<void(std::size_t)>& fn);

}  // namespace preinfer::support
