#pragma once

#include <iosfwd>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace preinfer::support {

/// One parsed trace record: the event kind plus the remaining fields in
/// file order, with string values unescaped and numbers/booleans kept as
/// their literal spelling.
struct TraceRecord {
    std::string event;
    std::vector<std::pair<std::string, std::string>> fields;

    /// The value of a field, or nullptr when absent.
    [[nodiscard]] const std::string* find(std::string_view key) const;
    /// Integer value of a field; `fallback` when absent or non-numeric.
    [[nodiscard]] std::int64_t find_int(std::string_view key,
                                        std::int64_t fallback = 0) const;
};

/// Parses one flat JSON object line (string, integer, and boolean values;
/// no nesting) into key/value pairs in file order, with string values
/// unescaped and numbers/booleans kept as their literal spelling. This is
/// the shared wire grammar: TraceEvent output and preinfer-serve request
/// lines (docs/SERVING.md) both use it. Returns nullopt and fills `error`
/// (when given) on malformed input.
[[nodiscard]] std::optional<std::vector<std::pair<std::string, std::string>>>
parse_flat_object(std::string_view line, std::string* error = nullptr);

/// Parses one JSONL trace line (the flat-object subset TraceEvent emits:
/// string, integer, and boolean values; no nesting). Returns nullopt and
/// fills `error` (when given) on malformed input or when the leading field
/// is not `"event"`.
[[nodiscard]] std::optional<TraceRecord> parse_trace_line(
    std::string_view line, std::string* error = nullptr);

/// Validates a whole trace stream against the schema contract documented in
/// docs/OBSERVABILITY.md: every line parses, names a known event kind, and
/// carries that kind's required fields. Returns the number of valid records;
/// on failure returns -1 and describes the first offending line in `error`.
[[nodiscard]] long validate_trace(std::istream& in, std::string* error = nullptr);

/// Required field names for one event kind (empty for unknown kinds); the
/// validator and docs/OBSERVABILITY.md agree on these.
[[nodiscard]] std::vector<std::string_view> required_trace_fields(
    std::string_view event);

}  // namespace preinfer::support
