#pragma once

#include <cstdint>
#include <string>

namespace preinfer::support {

/// A position in MiniLang source text. Lines and columns are 1-based;
/// line 0 means "unknown / synthesized".
struct SourceLoc {
    int line = 0;
    int col = 0;

    [[nodiscard]] bool known() const { return line > 0; }
    [[nodiscard]] std::string to_string() const;

    friend bool operator==(const SourceLoc&, const SourceLoc&) = default;
};

}  // namespace preinfer::support
